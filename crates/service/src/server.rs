//! `radionetd` itself: the accept loop, the connection handlers, and the
//! worker pool, wired around the cache and the queue.
//!
//! Thread shape (all std, no async runtime):
//!
//! ```text
//! client ──TCP──▶ accept loop ──▶ connection thread (one per client)
//!                                      │  submit/status/result/stats
//!                                      ▼
//!                                 JobQueue (bounded, backpressured)
//!                                      │
//!                                      ▼
//!                              worker pool (N threads)
//!                                      │
//!                                      ▼
//!                               ResultCache ──miss──▶ Driver::run
//! ```
//!
//! `sweep` requests short-circuit the queue: the connection thread peeks
//! every cell in the cache, runs only the misses through the sharded
//! coordinator, re-inserts them, and answers with the merged in-order
//! stream — so a repeated sweep is almost entirely cache traffic.
//!
//! Shutdown is cooperative: the `shutdown` command (or
//! [`ServiceHandle::request_shutdown`]) stops intake, wakes blocked
//! workers, lets accepted jobs drain, and unblocks the accept loop with a
//! loopback connection to itself; [`ServiceHandle::join`] then reaps the
//! threads.

use crate::cache::{CacheConfig, ResultCache};
use crate::protocol::{Request, Response, ServiceStats};
use crate::queue::{JobQueue, JobSnapshot, SubmitError};
use crate::shard::{run_sweep_sharded, ShardMode};
use radionet_api::{Driver, MemorySink, RunSpec};
use radionet_telemetry::{MetricsSnapshot, Registry, Stopwatch, Telemetry};
use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address. Port 0 picks a free port — read it back from
    /// [`ServiceHandle::addr`].
    pub addr: String,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Queue high-water mark (submissions beyond it are rejected).
    pub queue_capacity: usize,
    /// Result-cache configuration.
    pub cache: CacheConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 256,
            cache: CacheConfig::default(),
        }
    }
}

/// Everything the threads share.
struct Shared {
    driver: Driver,
    /// The daemon's telemetry registry; the driver carries a clone, so
    /// worker runs land in the same store the `metrics` command reads.
    registry: Registry,
    cache: ResultCache,
    queue: JobQueue,
    rejected: AtomicU64,
    connections: AtomicU64,
    stopping: AtomicBool,
    workers: u64,
    addr: SocketAddr,
}

impl Shared {
    /// Stops intake and wakes everything that could be blocked.
    fn begin_shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        self.queue.shutdown();
        // The accept loop blocks in `accept()`; a throwaway loopback
        // connection delivers the wake-up.
        let _ = TcpStream::connect(self.addr);
    }

    fn stats(&self) -> ServiceStats {
        let (live, terminal) = self.queue.counts();
        ServiceStats {
            cache: self.cache.stats(),
            jobs_live: live,
            jobs_terminal: terminal,
            rejected: self.rejected.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            workers: self.workers,
            queue_latency: self.queue.latency(),
        }
    }

    /// The telemetry snapshot the `metrics` command answers with: the
    /// registry's live counters and histograms, overlaid with the cache
    /// and queue gauges that are tracked as plain atomics elsewhere.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.registry.snapshot();
        let cache = self.cache.stats();
        snap.push_counter("cache_hits", cache.hits);
        snap.push_counter("cache_misses", cache.misses);
        snap.push_counter("cache_evictions", cache.evictions);
        snap.push_counter("cache_audits", cache.audits);
        snap.push_counter("cache_audit_failures", cache.audit_failures);
        snap.push_counter("cache_persist_hits", cache.persist_hits);
        snap.push_counter("connections", self.connections.load(Ordering::Relaxed));
        snap.push_counter("rejected", self.rejected.load(Ordering::Relaxed));
        let (live, terminal) = self.queue.counts();
        snap.push_gauge("cache_entries", cache.entries);
        snap.push_gauge("cache_bytes", cache.bytes);
        snap.push_gauge("jobs_live", live);
        snap.push_gauge("jobs_terminal", terminal);
        snap.push_gauge("workers", self.workers);
        if let Some(latency) = self.queue.latency() {
            snap.push_gauge("queue_wait_p50_micros", latency.queued_p50_micros);
            snap.push_gauge("queue_wait_p99_micros", latency.queued_p99_micros);
            snap.push_gauge("job_run_p50_micros", latency.run_p50_micros);
            snap.push_gauge("job_run_p99_micros", latency.run_p99_micros);
        }
        snap
    }
}

/// The service constructor (all the state lives in [`ServiceHandle`]).
pub struct Service;

impl Service {
    /// Binds, spawns the worker pool and the accept loop, and returns the
    /// running service's handle.
    ///
    /// # Errors
    ///
    /// Bind failures and persistent-cache open failures.
    pub fn start(config: ServiceConfig) -> io::Result<ServiceHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let registry = Registry::default();
        let shared = Arc::new(Shared {
            driver: Driver::standard().with_telemetry(registry.clone()),
            registry,
            cache: ResultCache::open(config.cache)?,
            queue: JobQueue::new(config.queue_capacity),
            rejected: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            workers: workers as u64,
            addr,
        });
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(ServiceHandle { shared, accept: Some(accept), workers: worker_handles })
    }
}

/// A running service: its address, its stats, and its shutdown.
pub struct ServiceHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A live snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Initiates shutdown without waiting (idempotent; a client's
    /// `shutdown` command does the same thing from inside).
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the service shuts down — a client's `shutdown`
    /// command or [`ServiceHandle::request_shutdown`] — then joins the
    /// accept loop and the worker pool. Accepted jobs drain first. This
    /// never *initiates* shutdown: a foreground daemon parks here until a
    /// client asks it to stop.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One worker thread: drain the queue through the cache until shutdown.
fn worker_loop(shared: &Shared) {
    while let Some((id, spec)) = shared.queue.take() {
        let serve = Stopwatch::start::<Registry>();
        let outcome = match shared.cache.serve(&shared.driver, &spec) {
            Ok(served) => Ok((served.report, served.hit)),
            Err(e) => Err(e.to_string()),
        };
        serve.stop(&shared.registry, "service_cache_serve_micros");
        shared.queue.complete(id, outcome);
        // The job is terminal now, so its timing is final.
        if let Some(snap) = shared.queue.status(id) {
            shared.registry.observe("service_queue_wait_micros", snap.queued_micros);
            shared.registry.observe("service_job_run_micros", snap.run_micros);
        }
        shared.registry.count("service_jobs", 1);
    }
}

/// The accept loop: one connection thread per client until shutdown.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let shared = shared.clone();
        std::thread::spawn(move || {
            let _ = serve_connection(&shared, stream);
        });
    }
}

/// One client session: request lines in, response lines out, until EOF or
/// a `shutdown` command.
fn serve_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    let reader = io::BufReader::new(stream.try_clone()?);
    let mut writer = io::BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request_watch = Stopwatch::start::<Registry>();
        let (response, stop) = match serde_json::from_str::<Request>(&line) {
            Ok(request) => dispatch(shared, request),
            Err(e) => (Response::err(format!("unparseable request: {e}")), false),
        };
        request_watch.stop(&shared.registry, "service_request_micros");
        shared.registry.count("service_requests", 1);
        let encoded = serde_json::to_string(&response)
            .unwrap_or_else(|e| format!("{{\"ok\":false,\"error\":\"encode: {e}\"}}"));
        writer.write_all(encoded.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if stop {
            shared.begin_shutdown();
            break;
        }
    }
    Ok(())
}

/// Executes one request; the bool asks the session loop to begin
/// shutdown after the response is flushed.
fn dispatch(shared: &Shared, request: Request) -> (Response, bool) {
    match request.cmd.as_str() {
        "submit" => (handle_submit(shared, request), false),
        "status" => (handle_status(shared, request, false), false),
        "result" => (handle_status(shared, request, true), false),
        "sweep" => (handle_sweep(shared, request), false),
        "stats" => (Response { stats: Some(shared.stats()), ..Response::ok() }, false),
        "metrics" => {
            (Response { metrics: Some(shared.metrics_snapshot()), ..Response::ok() }, false)
        }
        "shutdown" => (Response::ok(), true),
        other => (
            Response::err(format!(
                "unknown cmd {other:?}; submit, status, result, sweep, stats, metrics, or \
                 shutdown"
            )),
            false,
        ),
    }
}

fn handle_submit(shared: &Shared, request: Request) -> Response {
    let Some(spec) = request.spec else {
        return Response::err("submit needs a \"spec\"");
    };
    match shared.queue.submit(spec) {
        Ok(id) => {
            if request.wait.unwrap_or(false) {
                let snap = shared.queue.wait_terminal(id).expect("job just submitted");
                snapshot_response(snap, true)
            } else {
                Response { id: Some(id), state: Some("queued".into()), ..Response::ok() }
            }
        }
        Err(e) => {
            if matches!(e, SubmitError::QueueFull { .. }) {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
            }
            Response::err(e.to_string())
        }
    }
}

fn handle_status(shared: &Shared, request: Request, with_report: bool) -> Response {
    let Some(id) = request.id else {
        return Response::err("status/result need an \"id\"");
    };
    match shared.queue.status(id) {
        Some(snap) => snapshot_response(snap, with_report),
        None => Response::err(format!("unknown job id {id}")),
    }
}

/// Renders a job snapshot as a response; `result`-style responses carry
/// the report, `status`-style ones only the state and timing.
fn snapshot_response(snap: JobSnapshot, with_report: bool) -> Response {
    Response {
        id: Some(snap.id),
        state: Some(snap.state.name().into()),
        error: snap.error,
        cache_hit: snap.cache_hit,
        report: if with_report { snap.report } else { None },
        queued_micros: Some(snap.queued_micros),
        run_micros: Some(snap.run_micros),
        ..Response::ok()
    }
}

/// `sweep`: cache-peek every cell, run only the misses through the
/// sharded coordinator, merge, re-insert, and answer in request order.
fn handle_sweep(shared: &Shared, request: Request) -> Response {
    let Some(specs) = request.specs else {
        return Response::err("sweep needs \"specs\"");
    };
    let shards = request.shards.unwrap_or(1);
    let lookups = Stopwatch::start::<Registry>();
    let mut reports: Vec<Option<radionet_api::RunReport>> =
        specs.iter().map(|s| shared.cache.lookup(s)).collect();
    lookups.stop(&shared.registry, "service_cache_lookup_micros");
    let misses: Vec<(usize, RunSpec)> = specs
        .iter()
        .enumerate()
        .filter(|(i, _)| reports[*i].is_none())
        .map(|(i, s)| (i, s.clone()))
        .collect();
    let cache_hits: Vec<bool> = reports.iter().map(Option::is_some).collect();
    if !misses.is_empty() {
        let miss_specs: Vec<RunSpec> = misses.iter().map(|(_, s)| s.clone()).collect();
        let mut sink = MemorySink::default();
        if let Err(e) =
            run_sweep_sharded(&shared.driver, &miss_specs, shards, &ShardMode::InProcess, &mut sink)
        {
            return Response::err(e.to_string());
        }
        for ((i, _), report) in misses.iter().zip(sink.reports) {
            if let Err(e) = shared.cache.insert(&report) {
                return Response::err(e.to_string());
            }
            reports[*i] = Some(report);
        }
    }
    let reports: Vec<radionet_api::RunReport> =
        reports.into_iter().map(|r| r.expect("every cell hit or ran")).collect();
    Response { reports: Some(reports), cache_hits: Some(cache_hits), ..Response::ok() }
}
