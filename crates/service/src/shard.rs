//! The sharded sweep coordinator: split a spec list across workers, merge
//! the outputs back into the sequential stream — byte-identical, because
//! every cell is a pure function of its spec.
//!
//! Shard assignment is a **deterministic function of the per-cell seed
//! stream and the cell's position** ([`shard_of`]): the same sweep always
//! shards the same way, on any machine, so a distributed run is as
//! reproducible as a local one. Workers execute their shard *in order*;
//! the coordinator then reassembles by original index and streams into the
//! caller's [`ResultSink`] exactly as
//! [`Driver::run_sweep`](radionet_api::Driver::run_sweep) would have —
//! the shard-merge test suite pins 2-, 3- and 7-way shardings
//! byte-identical to the sequential stream over the extended catalogue,
//! `fell_back` telemetry included (it lives in each report's stats and
//! rides the same bytes).
//!
//! Two execution modes: scoped **in-process threads** (the default — the
//! worker pool this crate already runs), and flag-gated **subprocess
//! workers** (`radionetd --worker`), which speak spec-JSONL on stdin /
//! report-JSONL on stdout. Purity makes the two indistinguishable from the
//! output side; the subprocess test asserts exactly that.

use radionet_api::{seeds, Driver, ResultSink, RunError, RunReport, RunSpec};
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};

/// How shard workers execute.
#[derive(Clone, Debug)]
pub enum ShardMode {
    /// Scoped threads inside this process (the default).
    InProcess,
    /// One spawned `<exe> --worker` subprocess per shard, fed spec JSONL
    /// on stdin and read back as report JSONL on stdout (see
    /// [`worker_loop`]).
    Subprocess {
        /// The worker executable (normally the `radionetd` binary itself).
        exe: PathBuf,
    },
}

/// The deterministic shard of sweep position `index` carrying `spec`:
/// a [`seeds::mix`] of the cell seed and the position, reduced mod
/// `shards`. Mixing the position in keeps shards balanced even when a
/// sweep reuses one seed across cells.
pub fn shard_of(index: usize, spec: &RunSpec, shards: usize) -> usize {
    (seeds::mix(spec.seed ^ seeds::mix(index as u64)) % shards.max(1) as u64) as usize
}

/// Runs `specs` across `shards` workers and streams the merged reports to
/// `sink` in original order — byte-identical to the sequential
/// [`Driver::run_sweep`](radionet_api::Driver::run_sweep) stream. Returns
/// the number of reports emitted.
///
/// On a failing spec the sink still receives the longest in-order prefix
/// of completed reports and is finished (partial output stays well-formed,
/// matching the driver's own sweep semantics), and the first failing
/// shard's error is returned.
///
/// # Errors
///
/// [`RunError`] from any cell, sink failures, and (in subprocess mode)
/// worker I/O failures as [`RunError::Sink`].
pub fn run_sweep_sharded(
    driver: &Driver,
    specs: &[RunSpec],
    shards: usize,
    mode: &ShardMode,
    sink: &mut dyn ResultSink,
) -> Result<usize, RunError> {
    let shards = shards.clamp(1, specs.len().max(1));
    let mut parts: Vec<Vec<(usize, RunSpec)>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, spec) in specs.iter().enumerate() {
        parts[shard_of(i, spec, shards)].push((i, spec.clone()));
    }
    type ShardOut = Result<Vec<(usize, RunReport)>, RunError>;
    let results: Vec<ShardOut> = std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| {
                s.spawn(move || match mode {
                    ShardMode::InProcess => run_part_in_process(driver, part),
                    ShardMode::Subprocess { exe } => run_part_subprocess(exe, part),
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
    });

    let mut slots: Vec<Option<RunReport>> = specs.iter().map(|_| None).collect();
    let mut first_err: Option<RunError> = None;
    for shard_result in results {
        match shard_result {
            Ok(list) => {
                for (i, report) in list {
                    slots[i] = Some(report);
                }
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    let mut emitted = 0usize;
    for slot in &slots {
        // A hole means a failed shard owned this cell: everything after it
        // would be out of order, so the stream ends here.
        let Some(report) = slot else { break };
        if let Err(e) = sink.emit(report) {
            first_err = first_err.or(Some(e.into()));
            break;
        }
        emitted += 1;
    }
    match first_err {
        None => {
            sink.finish()?;
            Ok(emitted)
        }
        Some(e) => {
            let _ = sink.finish();
            Err(e)
        }
    }
}

/// One in-process shard: its cells in order, on this thread.
fn run_part_in_process(
    driver: &Driver,
    part: Vec<(usize, RunSpec)>,
) -> Result<Vec<(usize, RunReport)>, RunError> {
    part.into_iter().map(|(i, spec)| driver.run(&spec).map(|r| (i, r))).collect()
}

/// One subprocess shard: specs down the child's stdin as JSONL, reports
/// back up its stdout in the same order.
fn run_part_subprocess(
    exe: &PathBuf,
    part: Vec<(usize, RunSpec)>,
) -> Result<Vec<(usize, RunReport)>, RunError> {
    if part.is_empty() {
        return Ok(Vec::new());
    }
    let mut child = Command::new(exe)
        .arg("--worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(RunError::Sink)?;
    let mut stdin = child.stdin.take().expect("piped");
    let stdout = child.stdout.take().expect("piped");
    let (indices, specs): (Vec<usize>, Vec<RunSpec>) = part.into_iter().unzip();
    // Feed from a helper thread so a worker already emitting reports can
    // never deadlock against a still-writing coordinator.
    let feeder = std::thread::spawn(move || -> io::Result<()> {
        for spec in &specs {
            let line = serde_json::to_string(spec)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            stdin.write_all(line.as_bytes())?;
            stdin.write_all(b"\n")?;
        }
        Ok(()) // dropping stdin closes the pipe: the worker sees EOF
    });
    let mut out = Vec::with_capacity(indices.len());
    for (line, &i) in io::BufReader::new(stdout).lines().zip(&indices) {
        let line = line.map_err(RunError::Sink)?;
        let report: RunReport = serde_json::from_str(&line).map_err(|e| {
            RunError::Sink(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        })?;
        out.push((i, report));
    }
    feeder.join().expect("feeder panicked").map_err(RunError::Sink)?;
    let status = child.wait().map_err(RunError::Sink)?;
    if !status.success() {
        return Err(RunError::Sink(io::Error::other(format!("shard worker exited {status}"))));
    }
    if out.len() != indices.len() {
        return Err(RunError::Sink(io::Error::other(format!(
            "shard worker returned {} of {} reports",
            out.len(),
            indices.len()
        ))));
    }
    Ok(out)
}

/// The `--worker` side of subprocess sharding: reads spec JSONL from
/// `input`, runs each spec in order, writes report JSONL to `output`.
/// Returns the number of specs served. Blank lines are skipped, so a
/// trailing newline is harmless.
///
/// # Errors
///
/// I/O failures, unparseable spec lines, and failing runs (as their
/// [`RunError`] text) — a worker error is fatal for its shard.
pub fn worker_loop(
    driver: &Driver,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<usize> {
    let mut served = 0usize;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let spec: RunSpec = serde_json::from_str(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let report = driver.run(&spec).map_err(io::Error::other)?;
        let out = serde_json::to_string(&report)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        output.write_all(out.as_bytes())?;
        output.write_all(b"\n")?;
        served += 1;
    }
    output.flush()?;
    Ok(served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_api::{JsonlSink, MemorySink};
    use radionet_graph::families::Family;

    fn specs(n: usize) -> Vec<RunSpec> {
        (0..n).map(|i| RunSpec::new("luby-mis", Family::Path, 8).with_seed(i as u64)).collect()
    }

    #[test]
    fn assignment_is_deterministic_and_balanced_enough() {
        let list = specs(64);
        for (i, s) in list.iter().enumerate() {
            assert_eq!(shard_of(i, s, 7), shard_of(i, s, 7));
            assert!(shard_of(i, s, 7) < 7);
        }
        // All-equal seeds still spread (the position is mixed in).
        let same: Vec<RunSpec> =
            (0..64).map(|_| RunSpec::new("luby-mis", Family::Path, 8)).collect();
        let mut used = [false; 4];
        for (i, s) in same.iter().enumerate() {
            used[shard_of(i, s, 4)] = true;
        }
        assert!(used.iter().all(|&u| u), "64 equal-seed cells must touch all 4 shards");
    }

    #[test]
    fn sharded_bytes_equal_sequential_bytes() {
        let driver = Driver::standard();
        let list = specs(10);
        let mut seq = Vec::new();
        driver.run_sweep(&list, &mut JsonlSink::new(&mut seq)).unwrap();
        let mut sharded = Vec::new();
        let n = run_sweep_sharded(
            &driver,
            &list,
            3,
            &ShardMode::InProcess,
            &mut JsonlSink::new(&mut sharded),
        )
        .unwrap();
        assert_eq!(n, 10);
        assert_eq!(seq, sharded);
    }

    #[test]
    fn failing_cell_keeps_the_prefix_and_reports_the_error() {
        let driver = Driver::standard();
        let mut list = specs(6);
        list[4].task = "no-such-task".into();
        let mut sink = MemorySink::default();
        let err =
            run_sweep_sharded(&driver, &list, 2, &ShardMode::InProcess, &mut sink).unwrap_err();
        assert!(matches!(err, RunError::UnknownTask(_)), "{err}");
        // The in-order prefix before the failed cell's position survives.
        assert!(sink.reports.len() <= 4);
        for (i, r) in sink.reports.iter().enumerate() {
            assert_eq!(r.spec, list[i]);
        }
    }

    #[test]
    fn worker_loop_round_trips_jsonl() {
        let driver = Driver::standard();
        let list = specs(3);
        let input: String = list
            .iter()
            .map(|s| serde_json::to_string(s).unwrap() + "\n")
            .collect::<Vec<_>>()
            .join("");
        let mut out = Vec::new();
        let served = worker_loop(&driver, input.as_bytes(), &mut out).unwrap();
        assert_eq!(served, 3);
        let mut expect = Vec::new();
        driver.run_sweep(&list, &mut JsonlSink::new(&mut expect)).unwrap();
        assert_eq!(out, expect, "worker output is the sequential sweep stream");
    }
}
