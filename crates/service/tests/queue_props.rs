//! Queue-semantics property tests: any interleaving of `submit` /
//! `cancel` / `take` / `complete` over the bounded queue preserves
//! job-state monotonicity (`queued → running → done | failed |
//! cancelled`), and backpressure never drops an accepted job — after a
//! full drain every accepted id is still observable and terminal.
//!
//! The interleavings are driven through the non-blocking
//! [`JobQueue::try_take`] so each generated op sequence is one exact,
//! reproducible schedule (the vendored proptest derives its RNG from the
//! test name and case index).

use proptest::prelude::*;
use radionet_api::{Driver, RunReport, RunSpec};
use radionet_graph::families::Family;
use radionet_service::{JobQueue, JobState, SubmitError};
use std::collections::HashMap;
use std::sync::OnceLock;

/// One canned report cloned into every completion — the queue never looks
/// inside it, so a single real run keeps the property cheap.
fn canned_report() -> RunReport {
    static REPORT: OnceLock<RunReport> = OnceLock::new();
    REPORT
        .get_or_init(|| Driver::standard().run(&RunSpec::new("luby-mis", Family::Path, 8)).unwrap())
        .clone()
}

/// Re-reads every known job and checks its rank never decreased.
fn check_monotone(queue: &JobQueue, ranks: &mut HashMap<u64, u8>) {
    for (&id, prev) in ranks.iter_mut() {
        let state = queue.status(id).expect("accepted jobs stay observable").state;
        assert!(state.rank() >= *prev, "job {id} moved backwards: rank {prev} -> {}", state.rank());
        *prev = state.rank();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interleavings_keep_states_monotone_and_drop_no_job(
        cap in 1usize..5,
        ops in proptest::collection::vec((0u8..5, 0u64..16), 1..60),
    ) {
        let queue = JobQueue::new(cap);
        let mut accepted: Vec<u64> = Vec::new();
        let mut running: Vec<u64> = Vec::new();
        let mut ranks: HashMap<u64, u8> = HashMap::new();
        for (op, pick) in ops {
            match op {
                // Producer step: submit, checking backpressure honesty.
                0 => match queue.submit(RunSpec::new("luby-mis", Family::Path, 8)) {
                    Ok(id) => {
                        accepted.push(id);
                        ranks.insert(id, JobState::Queued.rank());
                    }
                    Err(SubmitError::QueueFull { capacity }) => {
                        prop_assert_eq!(capacity, cap);
                        let backlog = accepted
                            .iter()
                            .filter(|id| queue.status(**id).unwrap().state == JobState::Queued)
                            .count();
                        prop_assert_eq!(backlog, cap, "QueueFull only at the high-water mark");
                    }
                    Err(SubmitError::ShuttingDown) => {
                        unreachable!("queue was never shut down")
                    }
                },
                // Cancel an arbitrary known job: succeeds iff still queued.
                1 if !accepted.is_empty() => {
                    let id = accepted[pick as usize % accepted.len()];
                    let was_queued = queue.status(id).unwrap().state == JobState::Queued;
                    prop_assert_eq!(queue.cancel(id), was_queued);
                }
                // Worker intake step.
                2 => {
                    if let Some((id, _spec)) = queue.try_take() {
                        prop_assert_eq!(queue.status(id).unwrap().state, JobState::Running);
                        running.push(id);
                    }
                }
                // Worker completion step (success or injected failure).
                3 | 4 if !running.is_empty() => {
                    let id = running.swap_remove(pick as usize % running.len());
                    if op == 3 {
                        queue.complete(id, Ok((canned_report(), false)));
                        prop_assert_eq!(queue.status(id).unwrap().state, JobState::Done);
                    } else {
                        queue.complete(id, Err("injected failure".into()));
                        prop_assert_eq!(queue.status(id).unwrap().state, JobState::Failed);
                    }
                }
                // An op with no eligible target is a no-op step.
                _ => {}
            }
            check_monotone(&queue, &mut ranks);
        }
        // Drain: a worker loop empties the queue and settles stragglers.
        while let Some((id, _)) = queue.try_take() {
            queue.complete(id, Ok((canned_report(), false)));
        }
        for id in running {
            queue.complete(id, Ok((canned_report(), false)));
        }
        check_monotone(&queue, &mut ranks);
        // Backpressure never dropped an accepted job: every accepted id is
        // observable, terminal, and carries the payload its state implies.
        for id in accepted {
            let snap = queue.status(id).expect("accepted job vanished");
            prop_assert!(snap.state.is_terminal(), "job {} stuck in {:?}", id, snap.state);
            match snap.state {
                JobState::Done => prop_assert!(snap.report.is_some()),
                JobState::Failed => prop_assert!(snap.error.is_some()),
                JobState::Cancelled => prop_assert!(snap.report.is_none()),
                other => unreachable!("non-terminal terminal state {other:?}"),
            }
        }
    }

    #[test]
    fn capacity_frees_exactly_when_jobs_leave_the_backlog(
        cap in 1usize..4,
        frees in 0u8..3,
    ) {
        let queue = JobQueue::new(cap);
        let ids: Vec<u64> =
            (0..cap).map(|_| queue.submit(RunSpec::new("luby-mis", Family::Path, 8)).unwrap()).collect();
        prop_assert!(matches!(
            queue.submit(RunSpec::new("luby-mis", Family::Path, 8)),
            Err(SubmitError::QueueFull { .. })
        ));
        // Freeing a slot by cancelling or taking admits exactly one more.
        let freed = match frees {
            0 => queue.cancel(ids[0]),
            1 => queue.try_take().is_some(),
            _ => {
                let (id, _) = queue.try_take().unwrap();
                queue.complete(id, Err("free the slot".into()));
                true
            }
        };
        prop_assert!(freed);
        prop_assert!(queue.submit(RunSpec::new("luby-mis", Family::Path, 8)).is_ok());
        prop_assert!(matches!(
            queue.submit(RunSpec::new("luby-mis", Family::Path, 8)),
            Err(SubmitError::QueueFull { .. })
        ));
    }
}
