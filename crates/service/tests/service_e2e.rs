//! End-to-end pin of the serving layer: a real `Service` on a loopback
//! port, a real `ServiceClient` over TCP, and the contracts the CI smoke
//! relies on — repeated submission is a byte-identical cache hit, sweeps
//! report per-cell hits, and shutdown drains cleanly.

use radionet_api::{Driver, RunSpec};
use radionet_graph::families::Family;
use radionet_service::{CacheConfig, Service, ServiceClient, ServiceConfig, ServiceHandle};

fn tiny(seed: u64) -> RunSpec {
    RunSpec::new("broadcast", Family::Grid, 16).with_seed(seed)
}

fn start(config: ServiceConfig) -> (ServiceHandle, ServiceClient) {
    let handle = Service::start(config).expect("bind loopback port 0");
    let client = ServiceClient::connect(&handle.addr().to_string()).expect("connect");
    (handle, client)
}

#[test]
fn repeated_submission_is_a_byte_identical_cache_hit() {
    // audit_fraction 1.0: every hit is re-run and byte-compared serverside
    // too, so a silent divergence would fail the audit counter check.
    let config = ServiceConfig {
        cache: CacheConfig { audit_fraction: 1.0, ..CacheConfig::default() },
        ..ServiceConfig::default()
    };
    let (handle, mut client) = start(config);
    let first = client.submit_wait(&tiny(7)).unwrap();
    assert_eq!(first.state.as_deref(), Some("done"));
    assert_eq!(first.cache_hit, Some(false), "a cold spec executes fresh");
    let second = client.submit_wait(&tiny(7)).unwrap();
    assert_eq!(second.state.as_deref(), Some("done"));
    assert_eq!(second.cache_hit, Some(true), "the repeat is served from the cache");
    let a = serde_json::to_string(&first.report.unwrap()).unwrap();
    let b = serde_json::to_string(&second.report.unwrap()).unwrap();
    assert_eq!(a, b, "cached report must be byte-identical to the fresh one");

    let stats = client.stats().unwrap();
    assert_eq!((stats.cache.hits, stats.cache.misses), (1, 1));
    assert_eq!(stats.cache.audits, 1, "audit_fraction 1.0 audits every hit");
    assert_eq!(stats.cache.audit_failures, 0);
    assert_eq!(stats.jobs_terminal, 2);
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn sweep_via_the_client_matches_direct_runs_and_reports_hits() {
    let (handle, mut client) = start(ServiceConfig::default());
    let specs: Vec<RunSpec> = (0..5).map(tiny).collect();
    let (cold, cold_hits) = client.sweep(&specs, 3).unwrap();
    assert_eq!(cold_hits, vec![false; 5], "a cold sweep misses every cell");

    let driver = Driver::standard();
    for (got, spec) in cold.iter().zip(&specs) {
        let want = driver.run(spec).unwrap();
        assert_eq!(
            serde_json::to_string(got).unwrap(),
            serde_json::to_string(&want).unwrap(),
            "served sweep cell diverged from a direct run"
        );
    }
    // The repeat — different shard count, same bytes, all hits.
    let (warm, warm_hits) = client.sweep(&specs, 2).unwrap();
    assert_eq!(warm_hits, vec![true; 5], "the repeated sweep is pure cache traffic");
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap(),
            "warm sweep cell diverged from the cold one"
        );
    }
    let stats = client.stats().unwrap();
    assert_eq!((stats.cache.hits, stats.cache.misses), (5, 5));
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn async_submission_settles_and_unknown_ids_fail_cleanly() {
    let (handle, mut client) = start(ServiceConfig::default());
    let id = client.submit(&tiny(3)).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let snap = client.status(id).unwrap();
        let state = snap.state.as_deref().unwrap();
        if state == "done" {
            assert!(snap.report.is_none(), "status responses omit the report");
            break;
        }
        assert!(state == "queued" || state == "running", "unexpected pre-terminal state {state:?}");
        assert!(std::time::Instant::now() < deadline, "job {id} never settled");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let full = client.result(id).unwrap();
    assert!(full.report.is_some(), "result responses carry the report");
    assert!(full.queued_micros.is_some() && full.run_micros.is_some());
    assert!(client.status(999_999).is_err(), "unknown ids answer ok: false");
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn shutdown_is_acknowledged_and_drains() {
    let (handle, mut client) = start(ServiceConfig::default());
    // A job accepted before shutdown still completes (drain semantics).
    let done = client.submit_wait(&tiny(11)).unwrap();
    assert_eq!(done.state.as_deref(), Some("done"));
    client.shutdown().unwrap();
    handle.join();
    // The port is closed afterwards: a fresh connection cannot be served.
    // (Allow the OS a moment to tear the listener down.)
    std::thread::sleep(std::time::Duration::from_millis(50));
}
