//! Shard-merge determinism over the extended catalogue: sharded sweeps
//! (2, 3, and 7 shards) must produce a JSONL stream byte-identical to the
//! sequential [`Driver::run_sweep`] output, `fell_back` propagation
//! included — and subprocess workers must be indistinguishable from
//! in-process threads.

use radionet_api::{Driver, JsonlSink, RunSpec};
use radionet_graph::families::Family;
use radionet_scenario::runner::{cell_result_from_report, spec_for_cell, SweepConfig};
use radionet_scenario::Scenario;
use radionet_service::{run_sweep_sharded, ShardMode};
use radionet_sim::Kernel;

/// Every cell of the extended catalogue (static + mobility presets) at one
/// modest size, as façade specs under `kernel`.
fn extended_cells(kernel: Kernel) -> (SweepConfig, Vec<RunSpec>) {
    let config = SweepConfig {
        scenarios: Scenario::extended_catalogue(),
        sizes: vec![36],
        seeds: 1,
        base_seed: 0x00DA_51E5,
    };
    let specs = config.cells().iter().map(|cell| spec_for_cell(cell, kernel)).collect();
    (config, specs)
}

fn sequential_bytes(driver: &Driver, specs: &[RunSpec]) -> Vec<u8> {
    let mut out = Vec::new();
    driver.run_sweep(specs, &mut JsonlSink::new(&mut out)).unwrap();
    out
}

fn sharded_bytes(driver: &Driver, specs: &[RunSpec], shards: usize, mode: &ShardMode) -> Vec<u8> {
    let mut out = Vec::new();
    let emitted =
        run_sweep_sharded(driver, specs, shards, mode, &mut JsonlSink::new(&mut out)).unwrap();
    assert_eq!(emitted, specs.len(), "every cell must be emitted");
    out
}

#[test]
fn sharded_sweeps_are_byte_identical_over_the_extended_catalogue() {
    let driver = Driver::standard();
    let (_, specs) = extended_cells(Kernel::Sparse);
    assert!(specs.len() >= 8, "the extended catalogue should be a real sweep");
    let sequential = sequential_bytes(&driver, &specs);
    for shards in [2, 3, 7] {
        let sharded = sharded_bytes(&driver, &specs, shards, &ShardMode::InProcess);
        assert_eq!(sequential, sharded, "{shards}-way shard merge diverged from sequential");
    }
}

#[test]
fn fell_back_propagates_through_the_merged_stream() {
    // The event kernel is where sparse→dense fallbacks live; `fell_back`
    // rides each report's stats inside the same bytes, and the derived
    // per-cell rows must agree between sequential and sharded execution.
    let driver = Driver::standard();
    let (config, specs) = extended_cells(Kernel::Event);
    let sequential = sequential_bytes(&driver, &specs);
    let sharded = sharded_bytes(&driver, &specs, 3, &ShardMode::InProcess);
    assert_eq!(sequential, sharded, "event-kernel shard merge diverged");

    let reports: Vec<radionet_api::RunReport> = String::from_utf8(sharded)
        .unwrap()
        .lines()
        .map(|line| serde_json::from_str(line).unwrap())
        .collect();
    let cells = config.cells();
    assert_eq!(cells.len(), reports.len());
    for (cell, report) in cells.iter().zip(&reports) {
        let row = cell_result_from_report(cell, report, None);
        assert_eq!(
            row.fell_back,
            report.stats.kernel_fallbacks > 0,
            "fell_back must mirror the merged report's fallback counter for {}",
            row.scenario
        );
    }
}

#[test]
fn subprocess_workers_match_in_process_workers() {
    let driver = Driver::standard();
    let specs: Vec<RunSpec> =
        (0..6).map(|i| RunSpec::new("broadcast", Family::Grid, 16).with_seed(i as u64)).collect();
    let sequential = sequential_bytes(&driver, &specs);
    let in_process = sharded_bytes(&driver, &specs, 3, &ShardMode::InProcess);
    let exe = std::path::PathBuf::from(env!("CARGO_BIN_EXE_radionetd"));
    let subprocess = sharded_bytes(&driver, &specs, 3, &ShardMode::Subprocess { exe });
    assert_eq!(sequential, in_process);
    assert_eq!(sequential, subprocess, "subprocess workers must be output-indistinguishable");
}
