//! Step-boundary checkpoints: freeze a [`Sim`] plus its protocol states,
//! resume bit-exactly in a fresh process.
//!
//! A [`Checkpoint`] captures everything the engine's determinism contract
//! depends on — the global clock, the phase counter, cumulative
//! [`SimStats`], and every per-node RNG stream — plus the protocol states
//! as caller-encoded [`Value`] trees (the engine cannot serialize `P`
//! itself: protocols are arbitrary user types). Restoring into a freshly
//! constructed `Sim` with the same `(graph, topology, reception, seed)`
//! re-drives the topology view through the recorded `advance_to` history
//! and then verifies the RNG fingerprint, so a resumed run continues the
//! original step-for-step and bit-for-bit; the `checkpoint_resume`
//! proptests in `radionet-api` pin resume-at-k ≡ straight-through across
//! every dynamics preset and both kernels.

use crate::engine::Sim;
use crate::stats::SimStats;
use crate::topology::TopologyView;
use radionet_journal::JournalSink;
use radionet_telemetry::Telemetry;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize, Value};

/// One per-node RNG stream state: the four xoshiro256++ words as named
/// fields (the offline serde derive carries no fixed-size-array impls
/// past `[T; 3]`, and named fields keep the JSON self-describing anyway).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// State word 0.
    pub s0: u64,
    /// State word 1.
    pub s1: u64,
    /// State word 2.
    pub s2: u64,
    /// State word 3.
    pub s3: u64,
}

impl RngState {
    fn capture(rng: &SmallRng) -> RngState {
        let [s0, s1, s2, s3] = rng.state();
        RngState { s0, s1, s2, s3 }
    }

    fn restore(self) -> SmallRng {
        SmallRng::from_state([self.s0, self.s1, self.s2, self.s3])
    }
}

/// Why a [`Checkpoint`] refused to restore.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointError {
    /// The target simulation's graph size does not match the checkpoint.
    NodeCount {
        /// Nodes in the target simulation.
        sim: usize,
        /// Per-node entries in the checkpoint.
        checkpoint: usize,
    },
    /// The target simulation has already run: restore re-drives the
    /// topology view from step 0, which is only sound on a fresh `Sim`.
    SimNotFresh {
        /// The target's current clock.
        clock: u64,
    },
    /// A protocol state failed to decode (the codec's error, verbatim).
    Decode(String),
    /// The restored RNG streams do not reproduce the recorded
    /// fingerprint — the checkpoint is corrupt or was taken from a
    /// different build of the RNG.
    FingerprintMismatch {
        /// The fingerprint the checkpoint recorded.
        expected: u64,
        /// The fingerprint the restored streams produce.
        actual: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::NodeCount { sim, checkpoint } => write!(
                f,
                "checkpoint holds {checkpoint} per-node entries but the simulation has {sim} nodes"
            ),
            CheckpointError::SimNotFresh { clock } => write!(
                f,
                "checkpoints restore only into a freshly constructed simulation \
                 (target clock is {clock}, expected 0)"
            ),
            CheckpointError::Decode(why) => write!(f, "protocol state failed to decode: {why}"),
            CheckpointError::FingerprintMismatch { expected, actual } => write!(
                f,
                "restored RNG fingerprint {actual:#018x} does not match the recorded \
                 {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A frozen simulation at a step boundary. Serializes to one
/// self-describing JSON document; see the module docs for the resume
/// contract.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Global clock at the boundary (simulated + charged steps).
    pub clock: u64,
    /// Phases executed so far.
    pub phase: u64,
    /// Cumulative statistics at the boundary.
    pub stats: SimStats,
    /// Every per-node RNG stream, in node order.
    pub rng_states: Vec<RngState>,
    /// Caller-encoded protocol states, in node order.
    pub protocol_states: Vec<Value>,
    /// The RNG fingerprint at capture — verified on restore.
    pub rng_fingerprint: u64,
}

impl Checkpoint {
    /// Freezes `sim` and its protocol states at the current step boundary.
    /// `encode` turns one protocol state into a [`Value`] tree (most
    /// protocols just derive `Serialize` and pass
    /// `|s| serde::Serialize::to_value(s)`).
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the node count.
    pub fn capture<T: TopologyView, J: JournalSink, M: Telemetry, P>(
        sim: &Sim<'_, T, J, M>,
        states: &[P],
        mut encode: impl FnMut(&P) -> Value,
    ) -> Checkpoint {
        assert_eq!(states.len(), sim.graph().n(), "one protocol state per node");
        Checkpoint {
            clock: sim.clock(),
            phase: sim.phase(),
            stats: *sim.stats(),
            rng_states: sim.rng_streams().iter().map(RngState::capture).collect(),
            protocol_states: states.iter().map(&mut encode).collect(),
            rng_fingerprint: sim.rng_fingerprint(),
        }
    }

    /// Restores this checkpoint into a *freshly constructed* `sim` (same
    /// graph, topology, reception, and seed as the recorded run) and
    /// decodes the protocol states. On success the pair
    /// `(sim, returned states)` continues exactly where the recorded run
    /// left off.
    ///
    /// # Errors
    ///
    /// * [`CheckpointError::SimNotFresh`] — `sim` has already advanced;
    /// * [`CheckpointError::NodeCount`] — graph size mismatch;
    /// * [`CheckpointError::Decode`] — a protocol state failed to decode
    ///   (the simulation is left untouched);
    /// * [`CheckpointError::FingerprintMismatch`] — the restored RNG
    ///   streams contradict the recorded fingerprint.
    pub fn restore_into<T: TopologyView, J: JournalSink, M: Telemetry, P>(
        &self,
        sim: &mut Sim<'_, T, J, M>,
        mut decode: impl FnMut(&Value) -> Result<P, String>,
    ) -> Result<Vec<P>, CheckpointError> {
        if sim.clock() != 0 || sim.phase() != 0 {
            return Err(CheckpointError::SimNotFresh { clock: sim.clock().max(1) });
        }
        let n = sim.graph().n();
        if self.rng_states.len() != n || self.protocol_states.len() != n {
            return Err(CheckpointError::NodeCount {
                sim: n,
                checkpoint: self.rng_states.len().min(self.protocol_states.len()),
            });
        }
        let states = self
            .protocol_states
            .iter()
            .map(|v| decode(v).map_err(CheckpointError::Decode))
            .collect::<Result<Vec<P>, CheckpointError>>()?;
        let rngs = self.rng_states.iter().map(|s| s.restore()).collect();
        sim.restore_core(self.clock, self.phase, self.stats, rngs);
        let actual = sim.rng_fingerprint();
        if actual != self.rng_fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                expected: self.rng_fingerprint,
                actual,
            });
        }
        Ok(states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Action, NetInfo, NodeCtx, Protocol};
    use radionet_graph::generators;
    use serde::DeError;

    /// Transmits with probability 1/2; counts everything heard. The state
    /// round-trips through a `Value` via plain serde derive.
    #[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
    struct Gossip {
        heard: u64,
    }

    impl Protocol for Gossip {
        type Msg = u64;
        fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u64> {
            if rand::Rng::gen_bool(ctx.rng, 0.5) {
                Action::Transmit(self.heard)
            } else {
                Action::Listen
            }
        }
        fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &u64) {
            self.heard += msg + 1;
        }
    }

    fn decode(v: &Value) -> Result<Gossip, String> {
        Gossip::from_value(v).map_err(|e: DeError| e.to_string())
    }

    fn fresh(g: &radionet_graph::Graph) -> (Sim<'_>, Vec<Gossip>) {
        let sim = Sim::new(g, NetInfo::exact(g), 11);
        let states = vec![Gossip { heard: 0 }; g.n()];
        (sim, states)
    }

    #[test]
    fn resume_continues_bit_exactly() {
        let g = generators::grid2d(4, 4);
        // Straight-through reference: two phases.
        let (mut reference, mut ref_states) = fresh(&g);
        reference.run_phase(&mut ref_states, 20);
        let second_ref = reference.run_phase(&mut ref_states, 20);

        // Recorded run: one phase, checkpoint, drop everything.
        let (mut first, mut states) = fresh(&g);
        first.run_phase(&mut states, 20);
        let ck = Checkpoint::capture(&first, &states, |s| s.to_value());
        let json = serde_json::to_string(&ck).unwrap();
        drop(first);

        // Resume in a "new process": parse, restore, run phase two.
        let ck: Checkpoint = serde_json::from_str(&json).unwrap();
        let (mut resumed, _) = fresh(&g);
        let mut states = ck.restore_into(&mut resumed, decode).unwrap();
        assert_eq!(resumed.clock(), 20);
        assert_eq!(resumed.phase(), 1);
        let second = resumed.run_phase(&mut states, 20);

        assert_eq!(second, second_ref);
        assert_eq!(resumed.stats(), reference.stats());
        assert_eq!(resumed.rng_fingerprint(), reference.rng_fingerprint());
        assert_eq!(states, ref_states);
    }

    #[test]
    fn restore_refuses_an_advanced_sim() {
        let g = generators::star(5);
        let (mut sim, mut states) = fresh(&g);
        sim.run_phase(&mut states, 3);
        let ck = Checkpoint::capture(&sim, &states, |s| s.to_value());
        let err = ck.restore_into(&mut sim, decode).unwrap_err();
        assert!(matches!(err, CheckpointError::SimNotFresh { .. }), "{err}");
    }

    #[test]
    fn restore_refuses_a_wrong_sized_graph() {
        let g = generators::star(5);
        let (mut sim, mut states) = fresh(&g);
        sim.run_phase(&mut states, 3);
        let ck = Checkpoint::capture(&sim, &states, |s| s.to_value());
        let small = generators::star(4);
        let (mut other, _) = fresh(&small);
        let err = ck.restore_into(&mut other, decode).unwrap_err();
        assert_eq!(err, CheckpointError::NodeCount { sim: 4, checkpoint: 5 });
    }

    #[test]
    fn corrupt_rng_state_is_caught_by_the_fingerprint() {
        let g = generators::star(5);
        let (mut sim, mut states) = fresh(&g);
        sim.run_phase(&mut states, 3);
        let mut ck = Checkpoint::capture(&sim, &states, |s| s.to_value());
        // Corrupt a word the xoshiro256++ output function actually reads
        // (`rotl(s0 + s3, 23) + s0`): the one-draw fingerprint sees s0/s3
        // immediately; s1/s2 corruption would surface only after a step.
        ck.rng_states[2].s0 ^= 1;
        let (mut other, _) = fresh(&g);
        let err = ck.restore_into(&mut other, decode).unwrap_err();
        assert!(matches!(err, CheckpointError::FingerprintMismatch { .. }), "{err}");
    }
}
