//! Charged-cost accounting for black-boxed subroutines.

use serde::{Deserialize, Serialize};

/// Cost model for oracle-computed subroutines (DESIGN.md substitution S1).
///
/// The paper's `Compete` black-boxes the distributed computation of
/// intra-cluster schedules (\[17, 18\]), which takes `polylog(n)` time-steps
/// per clustering. We execute the *resulting* schedules faithfully on the
/// collision-accurate engine, but the schedule *construction* is performed
/// by the harness and charged to the clock through this model, so total
/// round counts remain honest.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Multiplier for the `log³ n` schedule-construction charge.
    pub schedule_build_factor: f64,
    /// Whether charges are applied at all (off ⇒ pure algorithmic steps,
    /// useful when isolating the `D log_D α` leading term).
    pub enabled: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { schedule_build_factor: 1.0, enabled: true }
    }
}

impl CostModel {
    /// A model that charges nothing (isolates simulated steps).
    pub fn free() -> Self {
        CostModel { schedule_build_factor: 0.0, enabled: false }
    }

    /// Charge for constructing schedules for one clustering of an `n`-node
    /// graph: `⌈factor · log³ n⌉` steps (\[18\] computes them in `polylog n`).
    pub fn schedule_build_cost(&self, n: usize) -> u64 {
        if !self.enabled {
            return 0;
        }
        let l = (n.max(2) as f64).log2();
        (self.schedule_build_factor * l * l * l).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_charges_log_cubed() {
        let c = CostModel::default();
        assert_eq!(c.schedule_build_cost(1024), 1000);
    }

    #[test]
    fn free_charges_nothing() {
        let c = CostModel::free();
        assert_eq!(c.schedule_build_cost(1 << 20), 0);
    }

    #[test]
    fn factor_scales() {
        let c = CostModel { schedule_build_factor: 2.0, enabled: true };
        assert_eq!(c.schedule_build_cost(1024), 2000);
    }
}
