//! The phase-based simulation engine: a sparse active-set step kernel, an
//! event-driven clock-jumping kernel on top of it, and a dense reference
//! kernel behind a runtime flag.
//!
//! # The three kernels
//!
//! The **dense** kernel is the paper's model executed literally: every step
//! it calls [`Protocol::act`] on every active node, then resolves reception.
//! Step cost is `Θ(n)` regardless of how many nodes actually do anything —
//! which is almost none of them in Decay tails, cluster phases, and flood
//! frontiers.
//!
//! The **sparse** kernel (the default) makes step cost proportional to
//! actual radio activity:
//!
//! * an **active set** (an index ring deduplicated with epoch stamps, plus
//!   two lazy-deletion wake heaps) tracks exactly the nodes whose `act`
//!   must run this step, driven by the [`Wake`] hints protocols return;
//! * a per-step **message arena** stores each transmitted message once;
//!   listeners receive `&Msg` out of the arena;
//! * protocol-model reception is resolved by iterating **transmitters'
//!   adjacency** (marking hit listeners with the stamp technique) instead
//!   of scanning all listeners;
//! * **SINR reception** is resolved through a
//!   [`SpatialGrid`](radionet_graph::spatial::SpatialGrid) whose cell
//!   width is the calibrated decode range: only listeners within one cell
//!   ring of a transmitter can possibly decode (or lose a decodable
//!   signal), so the per-step cost is proportional to transmitters and
//!   their physical neighborhoods instead of `O(listeners × transmitters)`.
//!   Under the default [`FarFieldPolicy::Exact`] the interference sum
//!   stays exact (over all transmitters, in transmitter order, so even
//!   the floating-point sums are bit-identical to the dense kernel);
//!   [`FarFieldPolicy::Cutoff`] truncates it with a proven
//!   `≤ eps·noise` omitted-interference bound. Positions come from the
//!   [`PositionSource`] — an owned snapshot, or live from the topology
//!   view ([`TopologyView::positions`]) with the spatial index rebuilt on
//!   [`TopologyView::positions_version`] bumps;
//! * topology dynamics arrive as a **batch change feed**
//!   ([`TopologyView::drain_status_changes`]) instead of per-node polls.
//!
//! The **event** kernel runs the exact same step body as the sparse kernel
//! but stops paying for silent steps altogether: after each executed step
//! it computes the earliest future step at which anything observable can
//! happen — the next ring engagement, the earliest wake or done timer in
//! the heaps, the topology view's next scripted/mobility event
//! ([`TopologyView::next_event`]), the journal's next waypoint boundary
//! ([`JournalSink::next_checkpoint`]), or a pending collision-detection jam
//! signal — and jumps the phase clock directly there, charging the skipped
//! span (counted in [`SimStats::silent_steps_skipped`]). A skipped step is
//! one in which, provably, no node acts or hears, no RNG advances, no
//! event is emitted and no waypoint is due, so every jumped run is
//! byte-identical to its stepped counterpart. Views that cannot bound
//! their next change ([`TopologyView::supports_event_jumps`] is false)
//! make the event kernel fall back to the stepping sparse kernel, recorded
//! via the same `fell_back` path as the sparse→dense fallback.
//!
//! All kernels are deterministic functions of `(graph, topology, info,
//! seed)` and produce identical [`PhaseReport`]s, [`SimStats`] and per-node
//! RNG streams as long as protocols honor the [`Wake`] contract; the
//! `kernel_equiv` proptests assert exactly that across the protocol and
//! scenario catalogues (the one deliberate exception:
//! [`FarFieldPolicy::Cutoff`] is honored by the sparse kernels only — the
//! dense reference always computes exact interference).

use crate::injection::{injections_ordered, Injection};
use crate::protocol::{Action, NetInfo, NodeCtx, Protocol, Wake};
use crate::reception::{dist3, FarFieldPolicy, PositionSource, ReceptionMode, SinrConfig};
use crate::stats::SimStats;
use crate::topology::{StaticTopology, TopologyView};
use radionet_graph::spatial::SpatialGrid;
use radionet_graph::{Graph, NodeId};
use radionet_journal::{
    CollisionInfo, DeliverInfo, EventClass, EventKind, GridInfo, HintInfo, JournalSink, NullSink,
    PhaseEndInfo, PhaseInfo, StatusInfo, TransmitInfo,
};
use radionet_telemetry::{timed, NoTelemetry, Stopwatch, Telemetry};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Records one event through the sink iff the sink is compiled in *and*
/// wants the class. Free-standing (borrows only the sink) so emission
/// sites inside the kernels keep their disjoint field borrows; the
/// payload closure runs only when the event is actually kept.
#[inline(always)]
fn emit<J: JournalSink>(
    journal: &mut J,
    class: EventClass,
    step: u64,
    kind: impl FnOnce() -> EventKind,
) {
    if J::ENABLED && journal.wants(class) {
        journal.record(step, kind());
    }
}

/// Flattens a [`Wake`] hint into the journal's payload shape.
fn hint_info(node: u32, hint: Wake) -> HintInfo {
    let opt = |t: u64| (t != Wake::NEVER).then_some(t);
    match hint {
        Wake::Now => {
            HintInfo { node, now: true, listen: false, retire: false, wake_at: None, done_at: None }
        }
        Wake::Listen { wake_at, done_at } | Wake::Sleep { wake_at, done_at } => HintInfo {
            node,
            now: false,
            listen: matches!(hint, Wake::Listen { .. }),
            retire: false,
            wake_at: opt(wake_at),
            done_at,
        },
        Wake::Retire => {
            HintInfo { node, now: false, listen: false, retire: true, wake_at: None, done_at: None }
        }
    }
}

/// Outcome of one [`Sim::run_phase`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseReport {
    /// Simulated time-steps consumed by the phase.
    pub steps: u64,
    /// Total transmissions during the phase.
    pub transmissions: u64,
    /// Successful deliveries (listener with exactly one transmitting neighbor).
    pub deliveries: u64,
    /// Collisions (listener with ≥ 2 transmitting neighbors in a step).
    pub collisions: u64,
    /// Whether every node reported [`Protocol::is_done`] before the budget.
    pub completed: bool,
    /// Whether the requested kernel was unavailable and the phase executed
    /// a slower one: [`Kernel::Sparse`] degraded to the dense reference
    /// (the topology view has no change feed), or [`Kernel::Event`]
    /// degraded to the stepping sparse kernel (the view cannot bound its
    /// next event) or further to dense. Accumulated into
    /// [`SimStats::kernel_fallbacks`] so a silently degraded run is
    /// observable in every report.
    pub fell_back: bool,
}

/// Which step kernel [`Sim::run_phase`] executes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Kernel {
    /// The transmitter-centric active-set kernel (see the module docs):
    /// per-step cost proportional to radio activity — under SINR
    /// reception, via a spatial index over the node positions.
    /// Automatically falls back to [`Kernel::Dense`] when the topology
    /// view has no change feed
    /// ([`TopologyView::supports_change_feed`]); the fallback is recorded
    /// in [`PhaseReport::fell_back`] and
    /// [`SimStats::kernel_fallbacks`], never silent.
    #[default]
    Sparse,
    /// The dense reference kernel: polls every node every step, ignoring
    /// [`Wake`] hints. Always correct, never fast; kept as the
    /// differential-testing oracle.
    Dense,
    /// The event-driven kernel: the sparse step body plus clock jumps over
    /// provably silent spans (see the module docs). Byte-identical to
    /// [`Kernel::Sparse`] on every report, event stream and RNG draw;
    /// skipped spans show up in [`SimStats::silent_steps_skipped`]. Falls
    /// back to the stepping sparse kernel when the topology view cannot
    /// bound its next event ([`TopologyView::supports_event_jumps`]), and
    /// further to [`Kernel::Dense`] without a change feed; either fallback
    /// is recorded in [`PhaseReport::fell_back`] and
    /// [`SimStats::kernel_fallbacks`], never silent.
    Event,
}

impl Kernel {
    /// Short stable name for tables and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Sparse => "sparse",
            Kernel::Dense => "dense",
            Kernel::Event => "event",
        }
    }
}

/// Why a [`Sim`] could not be constructed ([`Sim::try_with_topology`]).
///
/// Every variant is an SINR-configuration mismatch: the protocol models
/// need nothing beyond the graph, so they cannot fail.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// An SINR position snapshot does not carry one position per node.
    PositionCount {
        /// Nodes in the graph.
        nodes: usize,
        /// Positions supplied.
        positions: usize,
    },
    /// `PositionSource::Live` SINR reception over a topology view that
    /// carries no positions ([`TopologyView::positions`] is `None`).
    NoLivePositions,
    /// `PositionSource::Geometry` reached the engine unresolved — the
    /// driver layer must substitute the family's embedding (a snapshot)
    /// or the live feed before constructing the simulation.
    UnresolvedGeometry,
    /// The SINR physical parameters are degenerate
    /// ([`SinrConfig::validate`]).
    Config(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::PositionCount { nodes, positions } => write!(
                f,
                "SINR reception needs one position per node: \
                 the graph has {nodes} nodes but {positions} positions were supplied"
            ),
            SimError::NoLivePositions => write!(
                f,
                "live SINR positions need a topology view that carries geometry \
                 (TopologyView::positions returned None)"
            ),
            SimError::UnresolvedGeometry => write!(
                f,
                "PositionSource::Geometry must be resolved to a snapshot or the live \
                 feed before the engine runs (the API driver does this from the \
                 family's embedding)"
            ),
            SimError::Config(why) => f.write_str(why),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-node scheduling state of the sparse kernel, reused across phases.
///
/// The ring + stamp pair implements the active set: `ring` holds the nodes
/// whose `act` runs this step, `next_ring` collects nodes engaged for the
/// following step, and `ring_stamp[i] == step + 1` marks "already scheduled
/// for `step`" so duplicate pushes are free. The two heaps are lazy-deletion
/// timers keyed by phase-local step; an entry is stale (and dropped at pop
/// time) unless its epoch still matches `epoch[i]`, which every fresh hint
/// and every deactivation bumps.
#[derive(Debug, Default)]
struct SparseSched {
    ring: Vec<u32>,
    next_ring: Vec<u32>,
    ring_stamp: Vec<u64>,
    /// `(wake_at, node, epoch)`: call `act` at `wake_at`.
    act_heap: BinaryHeap<Reverse<(u64, u32, u64)>>,
    /// `(done_at, node, epoch)`: node counts as done at the end of `done_at`.
    done_heap: BinaryHeap<Reverse<(u64, u32, u64)>>,
    epoch: Vec<u64>,
    /// Sticky engine-side done flags ([`Protocol::is_done`] is monotone).
    done: Vec<bool>,
    /// `done[i] || (inactive && retired)` — the completion predicate.
    finished: Vec<bool>,
    /// Mirror of `topo.is_active`, updated from the change feed.
    was_active: Vec<bool>,
    /// Nodes stamped by this step's transmitters (reception work list).
    touched: Vec<u32>,
    /// Drain buffer for [`TopologyView::drain_status_changes`].
    changed: Vec<NodeId>,
    /// Listening-state transitions implied by this step's hints, applied
    /// after reception (a hint describes the node from the *next* step on:
    /// a slot transmitter entering a listen window was still deaf this
    /// step, a retiring listener still heard this step). Applied in issue
    /// order, so the latest hint for a node wins.
    listen_defer: Vec<(u32, bool)>,
    /// Number of unfinished nodes; the phase completes when it hits 0.
    pending: usize,
    /// Wake-heap entries popped this phase (stale ones included) — the
    /// phase's contribution to [`SimStats::scheduler_events`]. Identical
    /// between the sparse and event kernels: both pop exactly the entries
    /// that come due before the phase ends (the event kernel lands on
    /// every heap-peek time, and entries past the budget are dropped at
    /// push time).
    pops: u64,
}

impl SparseSched {
    fn reset(&mut self, n: usize) {
        self.ring.clear();
        self.next_ring.clear();
        self.act_heap.clear();
        self.done_heap.clear();
        self.touched.clear();
        self.changed.clear();
        self.listen_defer.clear();
        self.ring_stamp.clear();
        self.ring_stamp.resize(n, 0);
        self.epoch.clear();
        self.epoch.resize(n, 0);
        self.done.clear();
        self.done.resize(n, false);
        self.finished.clear();
        self.finished.resize(n, false);
        self.was_active.clear();
        self.was_active.resize(n, false);
        self.pending = 0;
        self.pops = 0;
    }

    /// Schedules `act` for node `i` at `step` (deduplicated).
    fn ring_at(&mut self, i: usize, step: u64, current_step: u64) {
        if self.ring_stamp[i] == step + 1 {
            return;
        }
        self.ring_stamp[i] = step + 1;
        if step == current_step {
            self.ring.push(i as u32);
        } else {
            debug_assert_eq!(step, current_step + 1);
            self.next_ring.push(i as u32);
        }
    }

    /// Marks node `i` done (sticky) and updates the completion counter.
    fn mark_done(&mut self, i: usize) {
        if !self.done[i] {
            self.done[i] = true;
            if !self.finished[i] {
                self.finished[i] = true;
                self.pending -= 1;
            }
        }
    }

    /// Applies a [`Wake`] hint issued for node `i` at phase-local step
    /// `now`. Timers beyond `max_steps` never fire within this phase (the
    /// last step is `max_steps - 1`, whose completion check matures done
    /// promises `d <= max_steps - 1`), so they are dropped instead of
    /// pushed — on a 100k-listener Decay phase that is 200k heap entries
    /// that would otherwise be allocated and never popped.
    fn apply_hint(&mut self, i: usize, now: u64, hint: Wake, max_steps: u64) {
        self.epoch[i] += 1;
        let ep = self.epoch[i];
        match hint {
            Wake::Now => self.ring_at(i, now + 1, now),
            Wake::Listen { wake_at, done_at } | Wake::Sleep { wake_at, done_at } => {
                self.listen_defer.push((i as u32, matches!(hint, Wake::Listen { .. })));
                if let Some(d) = done_at {
                    if d <= now {
                        self.mark_done(i);
                    } else if d < max_steps {
                        self.done_heap.push(Reverse((d, i as u32, ep)));
                    }
                }
                if wake_at != Wake::NEVER {
                    if wake_at <= now + 1 {
                        self.ring_at(i, now + 1, now);
                    } else if wake_at < max_steps {
                        self.act_heap.push(Reverse((wake_at, i as u32, ep)));
                    }
                }
            }
            Wake::Retire => {
                self.listen_defer.push((i as u32, false));
                self.mark_done(i);
            }
        }
    }

    /// Moves every due, still-valid act timer into this step's ring.
    fn pop_due_acts(&mut self, t: u64) {
        while let Some(&Reverse((at, i, ep))) = self.act_heap.peek() {
            if at > t {
                break;
            }
            self.act_heap.pop();
            self.pops += 1;
            let iu = i as usize;
            if ep == self.epoch[iu] && self.was_active[iu] {
                self.ring_at(iu, t, t);
            }
        }
    }

    /// Applies every matured, still-valid done promise (end of step `t`).
    fn mature_done(&mut self, t: u64) {
        while let Some(&Reverse((at, i, ep))) = self.done_heap.peek() {
            if at > t {
                break;
            }
            self.done_heap.pop();
            self.pops += 1;
            let iu = i as usize;
            if ep == self.epoch[iu] {
                self.mark_done(iu);
            }
        }
    }
}

/// A radio-network simulation bound to one graph, seen through a
/// [`TopologyView`].
///
/// Holds per-node RNGs that persist across phases, the global clock, and
/// cumulative [`SimStats`]. A multi-phase algorithm (e.g. `Compete`) runs
/// each stage with [`run_phase`](Sim::run_phase), optionally adding charged
/// oracle costs with [`charge`](Sim::charge); everything is a deterministic
/// function of `(graph, topology, info, seed)` — independently of the
/// selected [`Kernel`].
///
/// The default view, [`StaticTopology`], reproduces the paper's model (the
/// whole base graph, synchronous wake-up, no interference beyond
/// collisions). Dynamic views — churn, partitions, jammers — are consulted
/// once per simulated step and may change what the engine sees; see
/// `radionet-scenario`.
///
/// The third parameter is the observability hook: a [`JournalSink`] the
/// kernels stream events through. The default [`NullSink`] has
/// `ENABLED = false`, so every emission site monomorphizes to nothing —
/// an uninstrumented `Sim` costs exactly what it did before the journal
/// existed. Construct with [`Sim::try_with_journal`] (e.g. passing a
/// `radionet_journal::Recorder`) to record.
///
/// The fourth parameter is the telemetry hook, built on the same
/// monomorphization trick: a [`Telemetry`] handle the kernels time their
/// phases through (phase wall time, topology-advance and
/// reception-resolution time, SINR grid rebuilds, scheduler ring/heap
/// peaks). The default [`NoTelemetry`] compiles every site away; pass a
/// `radionet_telemetry::Registry` via [`Sim::try_instrumented`] to
/// record. Telemetry reads the wall clock and never steers: results are
/// byte-identical with it on or off.
#[derive(Debug)]
pub struct Sim<
    'g,
    T: TopologyView = StaticTopology,
    J: JournalSink = NullSink,
    M: Telemetry = NoTelemetry,
> {
    graph: &'g Graph,
    topo: T,
    info: NetInfo,
    rngs: Vec<SmallRng>,
    clock: u64,
    stats: SimStats,
    reception: ReceptionMode,
    kernel: Kernel,
    // Scratch buffers reused across steps and phases (the stamp technique
    // avoids O(n) clears; `listening` and `tx_nodes` avoid per-phase
    // reallocation).
    stamp: Vec<u64>,
    count: Vec<u32>,
    from: Vec<u32>,
    stamp_epoch: u64,
    listening: Vec<bool>,
    tx_nodes: Vec<u32>,
    sched: SparseSched,
    // SINR-only scratch: per-listener strongest candidate gain, the
    // transmitter membership stamp + `tx_nodes` slot for the far-field
    // ring search (and its candidate-collection buffer), and the
    // decode-range spatial index (rebuilt when the position version
    // changes). Empty/None under the protocol models.
    sinr_best: Vec<f64>,
    tx_mark: Vec<u64>,
    tx_slot: Vec<u32>,
    cutoff_cands: Vec<u32>,
    sinr_grid: Option<SpatialGrid>,
    sinr_grid_version: u64,
    /// The domain the grid layout was built for (`[lo, lo + side]` per
    /// axis); points drifting outside it force a layout rebuild instead
    /// of an in-place re-bucket.
    sinr_grid_lo: [f64; 3],
    sinr_grid_side: f64,
    // Observability: the event sink and the zero-based index of the next
    // phase (feeds PhaseStart/PhaseEnd events). With the default NullSink
    // every use of `journal` compiles away.
    journal: J,
    phase: u64,
    // Telemetry: wall-clock hooks, strictly outside the deterministic
    // surface. With the default NoTelemetry every use compiles away.
    tel: M,
}

impl<'g> Sim<'g> {
    /// Creates a simulation over `graph` with the given network estimates
    /// and master seed, under the paper's protocol model.
    pub fn new(graph: &'g Graph, info: NetInfo, seed: u64) -> Self {
        Self::with_reception(graph, info, seed, ReceptionMode::Protocol)
    }

    /// Fallible form of [`Sim::new`] (infallible in practice — the
    /// protocol model has nothing to validate — provided for symmetry so
    /// driver layers can route every construction through one `?` path).
    ///
    /// # Errors
    ///
    /// Never fails; see [`Sim::try_with_reception`].
    pub fn try_new(graph: &'g Graph, info: NetInfo, seed: u64) -> Result<Self, SimError> {
        Self::try_with_reception(graph, info, seed, ReceptionMode::Protocol)
    }

    /// Creates a simulation under an explicit [`ReceptionMode`] (collision
    /// detection or SINR; see the `reception` module docs).
    ///
    /// # Panics
    ///
    /// Panics where [`Sim::try_with_reception`] errors.
    pub fn with_reception(
        graph: &'g Graph,
        info: NetInfo,
        seed: u64,
        reception: ReceptionMode,
    ) -> Self {
        Self::with_topology(graph, StaticTopology, info, seed, reception)
    }

    /// Fallible form of [`Sim::with_reception`]: validates the SINR
    /// configuration instead of panicking.
    ///
    /// # Errors
    ///
    /// See [`Sim::try_with_topology`].
    pub fn try_with_reception(
        graph: &'g Graph,
        info: NetInfo,
        seed: u64,
        reception: ReceptionMode,
    ) -> Result<Self, SimError> {
        Self::try_with_topology(graph, StaticTopology, info, seed, reception)
    }
}

impl<'g, T: TopologyView> Sim<'g, T> {
    /// Creates a simulation whose per-step topology is `topo`'s view over
    /// `graph` (the dynamic-network entry point).
    ///
    /// # Panics
    ///
    /// Panics where [`Sim::try_with_topology`] errors (the message keeps
    /// the historical "one position per node" wording for the count
    /// mismatch).
    pub fn with_topology(
        graph: &'g Graph,
        topo: T,
        info: NetInfo,
        seed: u64,
        reception: ReceptionMode,
    ) -> Self {
        Self::try_with_topology(graph, topo, info, seed, reception)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible construction: validates the SINR configuration against the
    /// graph and the topology view — the driver-facing entry point, so a
    /// bad spec surfaces as a clean error instead of an engine panic.
    ///
    /// # Errors
    ///
    /// * [`SimError::Config`] — degenerate SINR physical parameters;
    /// * [`SimError::PositionCount`] — a snapshot without exactly one
    ///   position per node;
    /// * [`SimError::NoLivePositions`] — `PositionSource::Live` over a
    ///   view that carries no positions (or the wrong number of them);
    /// * [`SimError::UnresolvedGeometry`] — `PositionSource::Geometry`
    ///   was not resolved by the caller.
    pub fn try_with_topology(
        graph: &'g Graph,
        topo: T,
        info: NetInfo,
        seed: u64,
        reception: ReceptionMode,
    ) -> Result<Self, SimError> {
        Sim::try_with_journal(graph, topo, info, seed, reception, NullSink)
    }
}

impl<'g, T: TopologyView, J: JournalSink> Sim<'g, T, J> {
    /// Fallible construction with an explicit event sink — the
    /// observability entry point. Identical to
    /// [`Sim::try_with_topology`] except that the engine streams events
    /// (transmissions, receptions, status flips, phase boundaries,
    /// scheduler activity) through `journal`; pass a
    /// `radionet_journal::Recorder` to record a run, retrieve it with
    /// [`Sim::into_journal`].
    ///
    /// # Errors
    ///
    /// See [`Sim::try_with_topology`].
    pub fn try_with_journal(
        graph: &'g Graph,
        topo: T,
        info: NetInfo,
        seed: u64,
        reception: ReceptionMode,
        journal: J,
    ) -> Result<Self, SimError> {
        Sim::try_instrumented(graph, topo, info, seed, reception, journal, NoTelemetry)
    }
}

impl<'g, T: TopologyView, J: JournalSink, M: Telemetry> Sim<'g, T, J, M> {
    /// Fallible construction with explicit event sink *and* telemetry
    /// handle — the fully-general entry point the other constructors
    /// delegate to. With a `radionet_telemetry::Registry` the kernels
    /// record per-phase wall timings and scheduler sizes into it;
    /// telemetry never affects results.
    ///
    /// # Errors
    ///
    /// See [`Sim::try_with_topology`].
    pub fn try_instrumented(
        graph: &'g Graph,
        topo: T,
        info: NetInfo,
        seed: u64,
        reception: ReceptionMode,
        journal: J,
        tel: M,
    ) -> Result<Self, SimError> {
        let mut sinr = false;
        if let ReceptionMode::Sinr(cfg) = &reception {
            sinr = true;
            cfg.validate().map_err(SimError::Config)?;
            match &cfg.positions {
                PositionSource::Snapshot(points) => {
                    if points.len() != graph.n() {
                        return Err(SimError::PositionCount {
                            nodes: graph.n(),
                            positions: points.len(),
                        });
                    }
                }
                PositionSource::Live => match topo.positions() {
                    Some(points) if points.len() == graph.n() => {}
                    Some(points) => {
                        return Err(SimError::PositionCount {
                            nodes: graph.n(),
                            positions: points.len(),
                        })
                    }
                    None => return Err(SimError::NoLivePositions),
                },
                PositionSource::Geometry => return Err(SimError::UnresolvedGeometry),
            }
        }
        let mut master = SmallRng::seed_from_u64(seed);
        let rngs = (0..graph.n()).map(|_| SmallRng::seed_from_u64(master.gen())).collect();
        Ok(Sim {
            graph,
            topo,
            info,
            rngs,
            clock: 0,
            stats: SimStats::default(),
            reception,
            kernel: Kernel::default(),
            stamp: vec![0; graph.n()],
            count: vec![0; graph.n()],
            from: vec![0; graph.n()],
            stamp_epoch: 0,
            listening: vec![false; graph.n()],
            tx_nodes: Vec::new(),
            sched: SparseSched::default(),
            sinr_best: if sinr { vec![0.0; graph.n()] } else { Vec::new() },
            tx_mark: if sinr { vec![0; graph.n()] } else { Vec::new() },
            tx_slot: if sinr { vec![0; graph.n()] } else { Vec::new() },
            cutoff_cands: Vec::new(),
            sinr_grid: None,
            sinr_grid_version: 0,
            sinr_grid_lo: [0.0; 3],
            sinr_grid_side: 0.0,
            journal,
            phase: 0,
            tel,
        })
    }

    /// The event sink (immutable: recording state is the engine's to
    /// drive; callers read counters or digests through this).
    pub fn journal(&self) -> &J {
        &self.journal
    }

    /// Consumes the simulation and returns its event sink — how a
    /// recording (`radionet_journal::Recorder`) is extracted once the run
    /// is over.
    pub fn into_journal(self) -> J {
        self.journal
    }

    /// Phases executed so far (the next phase's zero-based index).
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// The active reception mode.
    pub fn reception(&self) -> &ReceptionMode {
        &self.reception
    }

    /// The kernel [`run_phase`](Sim::run_phase) executes.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Selects the step kernel. Both kernels produce identical results for
    /// contract-honoring protocols; [`Kernel::Dense`] exists as the
    /// reference oracle and for views without a change feed.
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// The immutable base graph (what the setup-stage algorithms — MIS
    /// validation, schedule construction — reason about; the per-step
    /// topology may show less).
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The topology view.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The network estimates every node receives.
    pub fn info(&self) -> &NetInfo {
        &self.info
    }

    /// Global clock: simulated plus charged steps so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// A digest of all per-node RNG states — two runs consumed identical
    /// randomness per node iff their fingerprints match. The kernel
    /// equivalence proptests compare this across [`Kernel::Sparse`] and
    /// [`Kernel::Dense`] runs.
    pub fn rng_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for rng in &self.rngs {
            let x = rng.clone().next_u64();
            h = (h ^ x).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Adds `steps` *charged* (oracle) time-steps: the clock advances but
    /// nothing is simulated. Used to account for black-boxed subroutines
    /// (see DESIGN.md substitution S1); tracked separately in [`SimStats`].
    pub fn charge(&mut self, steps: u64) {
        self.clock += steps;
        self.stats.charged_steps += steps;
    }

    /// The per-node RNG streams (checkpoint capture).
    pub(crate) fn rng_streams(&self) -> &[SmallRng] {
        &self.rngs
    }

    /// Overwrites the resumable core (clock, phase counter, stats, RNG
    /// streams) and fast-forwards the topology view — checkpoint-restore
    /// support, see [`Checkpoint`](crate::Checkpoint). Must only run on a
    /// freshly constructed `Sim` (the caller checks).
    ///
    /// Views that can bound their next observable change
    /// ([`TopologyView::supports_event_jumps`]) are fast-forwarded
    /// event-to-event — `O(events)` `advance_to` calls instead of
    /// `O(clock)` — landing on every [`TopologyView::next_event`] time and
    /// finishing with an explicit `advance_to(clock - 1)`, so the view's
    /// internal cursor matches a stepped restore exactly (the skipped gaps
    /// provably contain no event, so the per-step calls they replace were
    /// no-ops). Other views are re-driven through the exact `advance_to`
    /// sequence the recorded run performed, one call per executed step.
    /// Either way the change feed accumulated during the fast-forward is
    /// then discarded, just as a sparse phase start would.
    pub(crate) fn restore_core(
        &mut self,
        clock: u64,
        phase: u64,
        stats: SimStats,
        rngs: Vec<SmallRng>,
    ) {
        if clock > 0 && self.topo.supports_event_jumps() {
            let mut t = 0u64;
            loop {
                self.topo.advance_to(self.graph, t);
                if t == clock - 1 {
                    break;
                }
                // Next event time, clamped into the restored span; the
                // `max` guards against a view answering `<= t` (the
                // contract forbids it, but an infinite loop is a worse
                // failure mode than one extra call).
                t = self.topo.next_event(t).map_or(clock - 1, |e| e.min(clock - 1)).max(t + 1);
            }
        } else {
            for t in 0..clock {
                self.topo.advance_to(self.graph, t);
            }
        }
        self.sched.changed.clear();
        self.topo.drain_status_changes(&mut self.sched.changed);
        self.sched.changed.clear();
        self.clock = clock;
        self.phase = phase;
        self.stats = stats;
        self.rngs = rngs;
    }

    /// Runs one phase: every node executes `states[v]` until all *active*
    /// nodes are done or `max_steps` elapse.
    ///
    /// `states` must hold exactly one protocol state per node, indexed by
    /// [`NodeId::index`]. States are left in their final condition so the
    /// caller can extract outputs.
    ///
    /// Each step the engine first advances the topology view to the global
    /// clock, then skips inactive nodes entirely (they neither act nor
    /// hear, and their RNG streams do not advance while inactive) and
    /// suppresses delivery to jammed listeners (with collision detection,
    /// jamming is heard as a collision). Under the protocol models,
    /// transmissions route over the view's *current* edges; under SINR,
    /// reception is purely positional, so structural events (edge fades,
    /// partitions) do not apply — only node activity and jamming do.
    ///
    /// Which kernel executes is governed by [`set_kernel`](Sim::set_kernel)
    /// (default [`Kernel::Sparse`], with automatic dense fallback — see
    /// [`Kernel`]).
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph.n()`.
    pub fn run_phase<P: Protocol>(&mut self, states: &mut [P], max_steps: u64) -> PhaseReport {
        self.run_phase_with_injections(states, max_steps, &[])
    }

    /// [`run_phase`](Sim::run_phase) with a streaming-traffic arrival
    /// schedule: each [`Injection`] is handed to its node — via
    /// [`Protocol::on_inject`] — at the start of its phase-local step,
    /// before any node acts, under **every** kernel. The dense kernel walks
    /// each step anyway; the sparse kernel additionally re-engages the
    /// injected node's `act` for that step (if the node is active); the
    /// event kernel treats the next pending arrival as a wake source, so a
    /// clock jump never overshoots an injection. Injections are applied to
    /// protocol state regardless of activity status, keeping the kernels
    /// byte-identical under churn.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph.n()`, if `injections` is not sorted
    /// by arrival step, or if any injection names a node out of range.
    pub fn run_phase_with_injections<P: Protocol>(
        &mut self,
        states: &mut [P],
        max_steps: u64,
        injections: &[Injection<P::Msg>],
    ) -> PhaseReport {
        assert_eq!(states.len(), self.graph.n(), "one protocol state per node");
        assert!(injections_ordered(injections), "injections must be sorted by arrival step");
        assert!(
            injections.iter().all(|r| (r.node as usize) < states.len()),
            "injection names a node out of range"
        );
        let watch = Stopwatch::start::<M>();
        let sparse_ok = self.topo.supports_change_feed();
        let event_ok = sparse_ok && self.topo.supports_event_jumps();
        let phase = self.phase;
        emit(&mut self.journal, EventClass::Phase, self.clock, || {
            EventKind::PhaseStart(PhaseInfo { phase })
        });
        let fell_back = match self.kernel {
            Kernel::Sparse => !sparse_ok,
            Kernel::Event => !event_ok,
            Kernel::Dense => false,
        };
        if fell_back {
            emit(&mut self.journal, EventClass::Phase, self.clock, || {
                EventKind::Fallback(PhaseInfo { phase })
            });
        }
        let mut report = match self.kernel {
            Kernel::Event if event_ok => self.run_phase_sparse(states, max_steps, true, injections),
            Kernel::Event | Kernel::Sparse if sparse_ok => {
                self.run_phase_sparse(states, max_steps, false, injections)
            }
            _ => self.run_phase_dense(states, max_steps, injections),
        };
        // A requested-but-unavailable sparse kernel is a quiet Θ(n)-per-
        // step regression; record it so reports and the CLI can surface it.
        report.fell_back = fell_back;
        emit(&mut self.journal, EventClass::Phase, self.clock + report.steps, || {
            EventKind::PhaseEnd(PhaseEndInfo {
                phase,
                steps: report.steps,
                transmissions: report.transmissions,
                deliveries: report.deliveries,
                collisions: report.collisions,
                completed: report.completed,
            })
        });
        self.phase += 1;
        self.clock += report.steps;
        self.stats.absorb_phase(&report);
        // Mobility index-maintenance totals are the view's cumulative
        // counters; assign (not add) so they stay exact under any phase
        // structure.
        let (crossings, rows) = self.topo.index_work();
        self.stats.mobility_cell_crossings = crossings;
        self.stats.mobility_rows_recomputed = rows;
        watch.stop(&self.tel, "sim_phase_micros");
        self.tel.count("sim_phases", 1);
        report
    }

    /// The dense reference kernel: polls every node every step.
    fn run_phase_dense<P: Protocol>(
        &mut self,
        states: &mut [P],
        max_steps: u64,
        injections: &[Injection<P::Msg>],
    ) -> PhaseReport {
        let mut next_inj = 0usize;
        let mut report = PhaseReport {
            steps: 0,
            transmissions: 0,
            deliveries: 0,
            collisions: 0,
            completed: false,
            fell_back: false,
        };
        if states.iter().all(|s| s.is_done()) {
            report.completed = true;
            return report;
        }
        // Per-step message arena: each transmitted message is interned once
        // (`arena[k]` from node `tx_nodes[k]`); listeners receive `&Msg`.
        let mut arena: Vec<P::Msg> = Vec::new();
        self.listening.iter_mut().for_each(|l| *l = false);
        // Telemetry accumulators: per-step sections summed locally in
        // nanoseconds, observed once per phase (micros) — no per-step
        // registry traffic.
        let mut advance_nanos = 0u64;
        let mut reception_nanos = 0u64;
        // Status-flip tracking (journal only): the dense kernel has no
        // change feed, so it detects flips by scanning `is_active` against
        // a snapshot — the same events the sparse kernel reads off the
        // feed, paid for only when a sink wants them.
        if J::ENABLED && self.journal.wants(EventClass::Topology) {
            self.sched.was_active.clear();
            self.sched.was_active.resize(states.len(), false);
            for i in 0..states.len() {
                self.sched.was_active[i] = self.topo.is_active(NodeId::new(i));
            }
        }

        for local_t in 0..max_steps {
            let gstep = self.clock + report.steps;
            timed::<M, _>(&mut advance_nanos, || self.topo.advance_to(self.graph, gstep));
            if J::ENABLED && self.journal.wants(EventClass::Topology) {
                for i in 0..states.len() {
                    let active = self.topo.is_active(NodeId::new(i));
                    if active != self.sched.was_active[i] {
                        self.sched.was_active[i] = active;
                        self.journal.record(
                            gstep,
                            EventKind::Status(StatusInfo { node: i as u32, active }),
                        );
                    }
                }
            }
            // Traffic arrivals due this step enter their node's protocol
            // state before anyone acts — the identical ordering every
            // kernel honors.
            while let Some(rec) = injections.get(next_inj).filter(|r| r.at <= local_t) {
                next_inj += 1;
                let i = rec.node as usize;
                let mut ctx = NodeCtx { time: local_t, info: &self.info, rng: &mut self.rngs[i] };
                states[i].on_inject(&mut ctx, &rec.msg);
            }
            self.tx_nodes.clear();
            arena.clear();
            self.stamp_epoch += 1;
            for (i, state) in states.iter_mut().enumerate() {
                if !self.topo.is_active(NodeId::new(i)) {
                    self.listening[i] = false;
                    continue;
                }
                let mut ctx = NodeCtx { time: local_t, info: &self.info, rng: &mut self.rngs[i] };
                match state.act(&mut ctx) {
                    Action::Transmit(m) => {
                        self.listening[i] = false;
                        self.tx_nodes.push(i as u32);
                        arena.push(m);
                        emit(&mut self.journal, EventClass::Radio, gstep, || {
                            EventKind::Transmit(TransmitInfo { node: i as u32 })
                        });
                    }
                    Action::Listen => self.listening[i] = true,
                    Action::Idle => self.listening[i] = false,
                }
            }
            report.transmissions += self.tx_nodes.len() as u64;
            self.stats.peak_step_transmissions =
                self.stats.peak_step_transmissions.max(self.tx_nodes.len() as u64);
            let reception_t0 = if M::ENABLED { Some(Instant::now()) } else { None };
            if let ReceptionMode::Sinr(cfg) = &self.reception {
                // SINR reception (footnote 1): a listener decodes the
                // strongest transmitter iff its SINR clears the threshold,
                // regardless of graph adjacency. Reception is physical, so
                // the topology view's *structural* events (edge fades,
                // partitions) do not apply here — radio waves ignore
                // logical cuts; only node state (activity, jamming)
                // matters. The dense reference always sums interference
                // exactly (FarFieldPolicy applies to the sparse kernel).
                // A silent step resolves nothing, so the all-listener scan
                // is skipped outright rather than per listener.
                if !self.tx_nodes.is_empty() {
                    let pos = sinr_positions(cfg, &self.topo);
                    let floor = cfg.near_field_floor();
                    for (i, state) in states.iter_mut().enumerate() {
                        if !self.listening[i] {
                            continue;
                        }
                        let mut total = 0.0;
                        let mut best_gain = 0.0;
                        let mut best_ti = usize::MAX;
                        for (ti, &u) in self.tx_nodes.iter().enumerate() {
                            let gain = cfg.gain_clamped(dist3(&pos[u as usize], &pos[i]), floor);
                            total += gain;
                            if gain > best_gain {
                                best_gain = gain;
                                best_ti = ti;
                            }
                        }
                        if self.topo.is_jammed(NodeId::new(i)) {
                            // Broadband noise at the receiver: nothing
                            // decodes; it only counts as a collision if a
                            // signal that was decodable in isolation got
                            // drowned.
                            if best_gain / cfg.noise >= cfg.threshold {
                                report.collisions += 1;
                                emit(&mut self.journal, EventClass::Radio, gstep, || {
                                    EventKind::Collision(CollisionInfo { node: i as u32 })
                                });
                            }
                            continue;
                        }
                        let sinr = best_gain / (cfg.noise + (total - best_gain));
                        if sinr >= cfg.threshold {
                            let msg = &arena[best_ti];
                            let mut ctx =
                                NodeCtx { time: local_t, info: &self.info, rng: &mut self.rngs[i] };
                            state.on_hear(&mut ctx, msg);
                            report.deliveries += 1;
                            let from = self.tx_nodes[best_ti];
                            emit(&mut self.journal, EventClass::Radio, gstep, || {
                                EventKind::Deliver(DeliverInfo { node: i as u32, from })
                            });
                        } else if best_gain / cfg.noise >= cfg.threshold {
                            // Decodable in isolation, lost to interference.
                            report.collisions += 1;
                            emit(&mut self.journal, EventClass::Radio, gstep, || {
                                EventKind::Collision(CollisionInfo { node: i as u32 })
                            });
                        }
                    }
                }
            } else {
                // Protocol model: mark reception counts on neighbors of
                // transmitters, over the *current* topology.
                for (ti, &u) in self.tx_nodes.iter().enumerate() {
                    for &w in self.topo.neighbors(self.graph, NodeId::new(u as usize)) {
                        let wi = w.index();
                        if self.stamp[wi] != self.stamp_epoch {
                            self.stamp[wi] = self.stamp_epoch;
                            self.count[wi] = 0;
                        }
                        self.count[wi] += 1;
                        self.from[wi] = ti as u32;
                    }
                }
                // Deliver to unique-transmitter, unjammed listeners.
                for (ti, &u) in self.tx_nodes.iter().enumerate() {
                    for &w in self.topo.neighbors(self.graph, NodeId::new(u as usize)) {
                        let wi = w.index();
                        if self.listening[wi]
                            && self.stamp[wi] == self.stamp_epoch
                            && self.count[wi] == 1
                            && self.from[wi] == ti as u32
                            && !self.topo.is_jammed(w)
                        {
                            let msg = &arena[ti];
                            let mut ctx = NodeCtx {
                                time: local_t,
                                info: &self.info,
                                rng: &mut self.rngs[wi],
                            };
                            states[wi].on_hear(&mut ctx, msg);
                            report.deliveries += 1;
                            emit(&mut self.journal, EventClass::Radio, gstep, || {
                                EventKind::Deliver(DeliverInfo { node: wi as u32, from: u })
                            });
                        }
                    }
                }
                // Collisions: listeners with ≥ 2 transmitting neighbors, or
                // a jammed listener losing a real signal to noise. With
                // collision detection the listener is told — and jamming is
                // indistinguishable from a collision, so a jammed listener
                // hears the collision signal even in an otherwise silent
                // step.
                let cd = self.reception == ReceptionMode::ProtocolCd;
                for (i, state) in states.iter_mut().enumerate() {
                    if !self.listening[i] {
                        continue;
                    }
                    let hits = if self.stamp[i] == self.stamp_epoch { self.count[i] } else { 0 };
                    let jammed = self.topo.is_jammed(NodeId::new(i));
                    if hits >= 2 || (jammed && hits >= 1) {
                        report.collisions += 1;
                        emit(&mut self.journal, EventClass::Radio, gstep, || {
                            EventKind::Collision(CollisionInfo { node: i as u32 })
                        });
                    }
                    if cd && (hits >= 2 || jammed) {
                        let mut ctx =
                            NodeCtx { time: local_t, info: &self.info, rng: &mut self.rngs[i] };
                        state.on_collision(&mut ctx);
                    }
                }
            }
            if let Some(t0) = reception_t0 {
                reception_nanos += t0.elapsed().as_nanos() as u64;
            }
            report.steps += 1;
            if J::ENABLED && self.journal.checkpoint_due(self.clock + report.steps) {
                let fp = self.rng_fingerprint();
                self.journal.record_waypoint(self.clock + report.steps, fp);
            }
            // A phase completes when every node is either done or *retired*
            // (inactive with no scheduled return). A node that is merely
            // asleep, crashed-but-rejoining, or jamming-for-a-window keeps
            // the phase running so its return is actually simulated.
            if states
                .iter()
                .enumerate()
                .all(|(i, s)| s.is_done() || self.topo.is_retired(NodeId::new(i)))
            {
                report.completed = true;
                break;
            }
        }
        if M::ENABLED {
            self.tel.observe("sim_topology_advance_micros", advance_nanos / 1_000);
            self.tel.observe("sim_reception_micros", reception_nanos / 1_000);
        }
        report
    }

    /// The sparse active-set kernel, and — with `event` — the event-driven
    /// kernel on top of it (see the module docs). Both run the identical
    /// step body; `event` only changes how the phase-local clock advances
    /// between executed steps: stepping (`local_t + 1`) versus jumping to
    /// the earliest step at which anything observable can happen. A
    /// skipped step is provably empty — the next ring is empty, no wake or
    /// done timer is due, the topology view promises no change, no
    /// waypoint boundary falls inside the span, and (under collision
    /// detection) no jam-exposed listener is waiting for its per-step jam
    /// signal — so charging it without executing is byte-identical to
    /// stepping through it.
    fn run_phase_sparse<P: Protocol>(
        &mut self,
        states: &mut [P],
        max_steps: u64,
        event: bool,
        injections: &[Injection<P::Msg>],
    ) -> PhaseReport {
        let n = states.len();
        let mut next_inj = 0usize;
        let mut report = PhaseReport {
            steps: 0,
            transmissions: 0,
            deliveries: 0,
            collisions: 0,
            completed: false,
            fell_back: false,
        };
        // Phase-start scan (the only O(n) work outside of actual activity):
        // discard feed entries from before this phase, then snapshot
        // done/active/retired and seed the ring with every active node —
        // the dense kernel calls `act` on all of them at step 0 too.
        self.sched.reset(n);
        self.topo.drain_status_changes(&mut self.sched.changed);
        self.sched.changed.clear();
        self.listening.iter_mut().for_each(|l| *l = false);
        let mut done_count = 0usize;
        for (i, state) in states.iter().enumerate() {
            let v = NodeId::new(i);
            let done = state.is_done();
            let active = self.topo.is_active(v);
            self.sched.done[i] = done;
            self.sched.was_active[i] = active;
            if done {
                done_count += 1;
            }
            let finished = done || (!active && self.topo.is_retired(v));
            self.sched.finished[i] = finished;
            if !finished {
                self.sched.pending += 1;
            }
            if active {
                self.sched.ring.push(i as u32);
                self.sched.ring_stamp[i] = 1;
            }
        }
        if done_count == n {
            report.completed = true;
            return report;
        }
        let mut arena: Vec<P::Msg> = Vec::new();
        let cd = self.reception == ReceptionMode::ProtocolCd;
        let mut skipped = 0u64;
        // Telemetry accumulators: per-step sections summed locally in
        // nanoseconds and scheduler size peaks tracked locally, observed
        // once per phase — no per-step registry traffic.
        let mut advance_nanos = 0u64;
        let mut reception_nanos = 0u64;
        let mut ring_peak = 0u64;
        let mut heap_peak = 0u64;

        let mut local_t = 0u64;
        while local_t < max_steps {
            let gstep = self.clock + local_t;
            timed::<M, _>(&mut advance_nanos, || self.topo.advance_to(self.graph, gstep));

            // (1) Batch topology changes: reactivated nodes rejoin the ring
            // (their next hint re-parks them if there is nothing to do);
            // deactivated nodes go deaf and their timers are invalidated;
            // either way the completion predicate is re-evaluated.
            let mut changed = std::mem::take(&mut self.sched.changed);
            self.topo.drain_status_changes(&mut changed);
            for &v in &changed {
                let i = v.index();
                let active = self.topo.is_active(v);
                if active != self.sched.was_active[i] {
                    self.sched.was_active[i] = active;
                    emit(&mut self.journal, EventClass::Topology, gstep, || {
                        EventKind::Status(StatusInfo { node: i as u32, active })
                    });
                    if active {
                        self.sched.ring_at(i, local_t, local_t);
                    } else {
                        self.listening[i] = false;
                        self.sched.epoch[i] += 1;
                    }
                }
                let finished = self.sched.done[i] || (!active && self.topo.is_retired(v));
                if finished != self.sched.finished[i] {
                    self.sched.finished[i] = finished;
                    if finished {
                        self.sched.pending -= 1;
                    } else {
                        self.sched.pending += 1;
                    }
                }
            }
            changed.clear();
            self.sched.changed = changed;

            // (1b) Traffic arrivals due this step enter their node's
            // protocol state — same pre-act ordering as the dense kernel —
            // and, like a reactivation, an arrival is a wake source: the
            // injected node joins this step's ring (if active) so its next
            // `act` and fresh hint happen exactly when dense would see the
            // state change. A deaf (churned-down) node still queues the
            // message; it acts on it once the change feed reactivates it.
            while let Some(rec) = injections.get(next_inj).filter(|r| r.at <= local_t) {
                next_inj += 1;
                let i = rec.node as usize;
                let mut ctx = NodeCtx { time: local_t, info: &self.info, rng: &mut self.rngs[i] };
                states[i].on_inject(&mut ctx, &rec.msg);
                if self.sched.was_active[i] {
                    self.sched.ring_at(i, local_t, local_t);
                }
            }

            // (2) Due wake-ups join this step's ring.
            self.sched.pop_due_acts(local_t);

            // (3) Act: only ring members run. Hints are taken immediately
            // after each act; is_done is polled only on engaged nodes.
            self.tx_nodes.clear();
            arena.clear();
            self.stamp_epoch += 1;
            let ring = std::mem::take(&mut self.sched.ring);
            if M::ENABLED {
                ring_peak = ring_peak.max(ring.len() as u64);
                heap_peak =
                    heap_peak.max((self.sched.act_heap.len() + self.sched.done_heap.len()) as u64);
            }
            for &iu in &ring {
                let i = iu as usize;
                if !self.sched.was_active[i] {
                    continue;
                }
                let mut ctx = NodeCtx { time: local_t, info: &self.info, rng: &mut self.rngs[i] };
                match states[i].act(&mut ctx) {
                    Action::Transmit(m) => {
                        self.listening[i] = false;
                        self.tx_nodes.push(iu);
                        arena.push(m);
                        emit(&mut self.journal, EventClass::Radio, gstep, || {
                            EventKind::Transmit(TransmitInfo { node: iu })
                        });
                    }
                    Action::Listen => self.listening[i] = true,
                    Action::Idle => self.listening[i] = false,
                }
                if !self.sched.done[i] && states[i].is_done() {
                    self.sched.mark_done(i);
                }
                let hint = states[i].next_wake(local_t);
                emit(&mut self.journal, EventClass::Sched, gstep, || {
                    EventKind::Hint(hint_info(iu, hint))
                });
                self.sched.apply_hint(i, local_t, hint, max_steps);
            }
            self.sched.ring = ring;
            report.transmissions += self.tx_nodes.len() as u64;
            self.stats.peak_step_transmissions =
                self.stats.peak_step_transmissions.max(self.tx_nodes.len() as u64);

            // (4) Reception. Under SINR the "neighborhood" is physical:
            // the decode-range spatial index stands in for adjacency.
            // Under the protocol models it is the transmitters' graph
            // neighborhoods. Either way: stamp hit nodes (collecting the
            // touched list), then resolve each touched listener exactly
            // once.
            let reception_t0 = if M::ENABLED { Some(Instant::now()) } else { None };
            if let ReceptionMode::Sinr(cfg) = &self.reception {
                self.sched.touched.clear();
                if !self.tx_nodes.is_empty() {
                    let pos = sinr_positions(cfg, &self.topo);
                    // Keep the decode-range index in sync with the
                    // position source: a snapshot never moves (version
                    // stays 0 → built once per Sim); a live source bumps
                    // its version whenever nodes moved, which re-buckets
                    // in place and keeps the cell layout — the hot path
                    // never reallocates. The layout is only rebuilt when
                    // the point extent outgrows it (drifted points clamp
                    // correctly, see SpatialGrid::new, but piling them
                    // into boundary cells would quietly erode the
                    // index's selectivity).
                    let version = match cfg.positions {
                        PositionSource::Snapshot(_) => 0,
                        _ => self.topo.positions_version(),
                    };
                    if self.sinr_grid.is_none() || version != self.sinr_grid_version {
                        let grid_watch = Stopwatch::start::<M>();
                        let (lo, hi) = position_bounds(pos);
                        let fits = (0..3).all(|a| {
                            lo[a] >= self.sinr_grid_lo[a]
                                && hi[a] <= self.sinr_grid_lo[a] + self.sinr_grid_side
                        });
                        match &mut self.sinr_grid {
                            Some(grid) if fits => grid.rebuild(pos),
                            slot => {
                                let (grid, anchor, side) = build_sinr_grid(cfg, pos, lo, hi);
                                *slot = Some(grid);
                                self.sinr_grid_lo = anchor;
                                self.sinr_grid_side = side;
                            }
                        }
                        self.sinr_grid_version = version;
                        grid_watch.stop(&self.tel, "sim_sinr_grid_rebuild_micros");
                        self.tel.count("sim_sinr_grid_rebuilds", 1);
                        emit(&mut self.journal, EventClass::Sched, gstep, || {
                            EventKind::GridRebuild(GridInfo { version })
                        });
                    }
                    let grid = self.sinr_grid.as_ref().expect("built above");
                    let floor = cfg.near_field_floor();
                    let epoch = self.stamp_epoch;
                    // Cutoff mode: fix this step's truncation radius once
                    // (eps and the transmitter count don't change within
                    // a step — the powf has no business in the
                    // per-listener loop) and stamp transmitter
                    // membership for the far-field ring search below.
                    let cutoff = match cfg.far_field {
                        FarFieldPolicy::Exact => None,
                        FarFieldPolicy::Cutoff(eps) => {
                            for (ti, &u) in self.tx_nodes.iter().enumerate() {
                                self.tx_mark[u as usize] = epoch;
                                self.tx_slot[u as usize] = ti as u32;
                            }
                            Some(cfg.cutoff_distance(eps, self.tx_nodes.len()))
                        }
                    };
                    // (4a) Candidate pass, transmitter-centric: every
                    // listener that could possibly decode (or lose a
                    // decodable signal) is within one index cell ring —
                    // the cell width *is* the decode range — of some
                    // transmitter. Track its strongest transmitter;
                    // iterating transmitters in `ti` order with a strict
                    // `>` reproduces the dense kernel's tie-break (first
                    // maximal transmitter wins) exactly.
                    for (ti, &u) in self.tx_nodes.iter().enumerate() {
                        let pu = pos[u as usize];
                        grid.for_candidates(pu, |cand| {
                            let wi = cand as usize;
                            if !self.listening[wi] {
                                return;
                            }
                            let gain = cfg.gain_clamped(dist3(&pu, &pos[wi]), floor);
                            if self.stamp[wi] != epoch {
                                self.stamp[wi] = epoch;
                                self.sinr_best[wi] = gain;
                                self.from[wi] = ti as u32;
                                self.sched.touched.push(cand);
                            } else if gain > self.sinr_best[wi] {
                                self.sinr_best[wi] = gain;
                                self.from[wi] = ti as u32;
                            }
                        });
                    }
                    // (4b) Resolve each touched listener once. Skipping
                    // listeners whose best candidate is below the decode
                    // threshold is exact: the true strongest transmitter
                    // of such a listener (candidate or not) is below
                    // threshold too, so the dense kernel also neither
                    // delivers nor counts a collision for it.
                    let touched = std::mem::take(&mut self.sched.touched);
                    for &w32 in &touched {
                        let wi = w32 as usize;
                        let best = self.sinr_best[wi];
                        if best / cfg.noise < cfg.threshold {
                            continue;
                        }
                        if self.topo.is_jammed(NodeId::new(wi)) {
                            // A decodable signal drowned by broadband
                            // receiver noise: a collision, no delivery.
                            report.collisions += 1;
                            emit(&mut self.journal, EventClass::Radio, gstep, || {
                                EventKind::Collision(CollisionInfo { node: w32 })
                            });
                            continue;
                        }
                        let total = match cutoff {
                            // Exact interference: the sum runs over all
                            // transmitters in `ti` order — the identical
                            // floating-point reduction the dense kernel
                            // computes.
                            None => {
                                let mut sum = 0.0;
                                for &t in &self.tx_nodes {
                                    sum +=
                                        cfg.gain_clamped(dist3(&pos[t as usize], &pos[wi]), floor);
                                }
                                sum
                            }
                            // Cutoff: only transmitters within the
                            // eps-calibrated radius contribute; the
                            // omitted tail is ≤ eps·noise in total (see
                            // FarFieldPolicy::Cutoff). Candidates are
                            // collected from the ring walk, then summed
                            // in `ti` order — the same floating-point
                            // reduction order as Exact — so a radius
                            // wide enough to reach every transmitter
                            // reproduces the Exact sum bit-for-bit
                            // instead of merely up to rounding.
                            Some(cut) => {
                                let mut cands = std::mem::take(&mut self.cutoff_cands);
                                cands.clear();
                                grid.for_candidates_within(pos[wi], cut, |cand| {
                                    let ci = cand as usize;
                                    if self.tx_mark[ci] == epoch {
                                        cands.push(self.tx_slot[ci]);
                                    }
                                });
                                cands.sort_unstable();
                                let mut sum = 0.0;
                                for &ti in &cands {
                                    let t = self.tx_nodes[ti as usize] as usize;
                                    sum += cfg.gain_clamped(dist3(&pos[t], &pos[wi]), floor);
                                }
                                self.cutoff_cands = cands;
                                sum
                            }
                        };
                        let sinr = best / (cfg.noise + (total - best));
                        if sinr >= cfg.threshold {
                            let ti = self.from[wi] as usize;
                            let mut ctx = NodeCtx {
                                time: local_t,
                                info: &self.info,
                                rng: &mut self.rngs[wi],
                            };
                            states[wi].on_hear(&mut ctx, &arena[ti]);
                            report.deliveries += 1;
                            let from = self.tx_nodes[ti];
                            emit(&mut self.journal, EventClass::Radio, gstep, || {
                                EventKind::Deliver(DeliverInfo { node: w32, from })
                            });
                            // Hearing re-engages the node: poll done-ness,
                            // take a fresh hint.
                            if !self.sched.done[wi] && states[wi].is_done() {
                                self.sched.mark_done(wi);
                            }
                            let hint = states[wi].next_wake(local_t);
                            emit(&mut self.journal, EventClass::Sched, gstep, || {
                                EventKind::Hint(hint_info(w32, hint))
                            });
                            self.sched.apply_hint(wi, local_t, hint, max_steps);
                        } else {
                            // Decodable in isolation, lost to
                            // interference (no CD under SINR: the
                            // listener is not notified, so no re-engage).
                            report.collisions += 1;
                            emit(&mut self.journal, EventClass::Radio, gstep, || {
                                EventKind::Collision(CollisionInfo { node: w32 })
                            });
                        }
                    }
                    self.sched.touched = touched;
                }
            } else {
                self.sched.touched.clear();
                for (ti, &u) in self.tx_nodes.iter().enumerate() {
                    for &w in self.topo.neighbors(self.graph, NodeId::new(u as usize)) {
                        let wi = w.index();
                        if self.stamp[wi] != self.stamp_epoch {
                            self.stamp[wi] = self.stamp_epoch;
                            self.count[wi] = 0;
                            self.sched.touched.push(wi as u32);
                        }
                        self.count[wi] += 1;
                        self.from[wi] = ti as u32;
                    }
                }
                let touched = std::mem::take(&mut self.sched.touched);
                for &wi32 in &touched {
                    let wi = wi32 as usize;
                    if !self.listening[wi] {
                        continue;
                    }
                    let w = NodeId::new(wi);
                    let hits = self.count[wi];
                    let jammed = self.topo.is_jammed(w);
                    if hits == 1 && !jammed {
                        let ti = self.from[wi] as usize;
                        let mut ctx =
                            NodeCtx { time: local_t, info: &self.info, rng: &mut self.rngs[wi] };
                        states[wi].on_hear(&mut ctx, &arena[ti]);
                        report.deliveries += 1;
                        let from = self.tx_nodes[ti];
                        emit(&mut self.journal, EventClass::Radio, gstep, || {
                            EventKind::Deliver(DeliverInfo { node: wi32, from })
                        });
                    } else {
                        if hits >= 2 || (jammed && hits >= 1) {
                            report.collisions += 1;
                            emit(&mut self.journal, EventClass::Radio, gstep, || {
                                EventKind::Collision(CollisionInfo { node: wi32 })
                            });
                        }
                        if cd {
                            let mut ctx = NodeCtx {
                                time: local_t,
                                info: &self.info,
                                rng: &mut self.rngs[wi],
                            };
                            states[wi].on_collision(&mut ctx);
                        } else {
                            continue;
                        }
                    }
                    // Hearing (or a CD collision signal) re-engages the
                    // node: poll done-ness, take a fresh hint.
                    if !self.sched.done[wi] && states[wi].is_done() {
                        self.sched.mark_done(wi);
                    }
                    let hint = states[wi].next_wake(local_t);
                    emit(&mut self.journal, EventClass::Sched, gstep, || {
                        EventKind::Hint(hint_info(wi32, hint))
                    });
                    self.sched.apply_hint(wi, local_t, hint, max_steps);
                }
                self.sched.touched = touched;
                // CD jam signal on otherwise silent listeners: the dense
                // kernel finds these in its all-listener scan; here the
                // view hands us the (typically tiny) jam-exposed set
                // directly.
                if cd {
                    let mut re_engage: Vec<u32> = Vec::new();
                    for &w in self.topo.jammed_nodes() {
                        let wi = w.index();
                        if self.stamp[wi] == self.stamp_epoch || !self.listening[wi] {
                            continue;
                        }
                        let mut ctx =
                            NodeCtx { time: local_t, info: &self.info, rng: &mut self.rngs[wi] };
                        states[wi].on_collision(&mut ctx);
                        re_engage.push(wi as u32);
                    }
                    for &wi32 in &re_engage {
                        let wi = wi32 as usize;
                        if !self.sched.done[wi] && states[wi].is_done() {
                            self.sched.mark_done(wi);
                        }
                        let hint = states[wi].next_wake(local_t);
                        emit(&mut self.journal, EventClass::Sched, gstep, || {
                            EventKind::Hint(hint_info(wi32, hint))
                        });
                        self.sched.apply_hint(wi, local_t, hint, max_steps);
                    }
                }
            }
            if let Some(t0) = reception_t0 {
                reception_nanos += t0.elapsed().as_nanos() as u64;
            }

            report.steps = local_t + 1;
            if J::ENABLED && self.journal.checkpoint_due(self.clock + report.steps) {
                let fp = self.rng_fingerprint();
                self.journal.record_waypoint(self.clock + report.steps, fp);
            }
            // (5) Apply the hints' deferred listening transitions (the
            // step's reception above still saw the pre-hint state, exactly
            // as the dense kernel would), mature done promises, check
            // completion, rotate the ring.
            for &(i, l) in &self.sched.listen_defer {
                self.listening[i as usize] = l;
            }
            self.sched.listen_defer.clear();
            self.sched.mature_done(local_t);
            if self.sched.pending == 0 {
                report.completed = true;
                break;
            }
            std::mem::swap(&mut self.sched.ring, &mut self.sched.next_ring);
            self.sched.next_ring.clear();

            // (6) Advance the phase-local clock. Stepping kernel: one step.
            // Event kernel: jump to the earliest step at which anything
            // observable can happen, charging the provably silent span.
            let next = if !event || !self.sched.ring.is_empty() {
                // Something is engaged for the very next step (the swapped
                // ring is next step's work list) — no jump possible.
                local_t + 1
            } else if cd && self.topo.jammed_nodes().iter().any(|w| self.listening[w.index()]) {
                // A jam-exposed listener receives the collision-detection
                // jam signal on *every* step, so no step is silent while
                // one exists. The set is invariant over a silent span
                // (listening flips only on executed steps, the jam set
                // only at topology events — both land), so checking once
                // here covers the whole would-be jump.
                local_t + 1
            } else {
                let mut next = max_steps;
                // Earliest wake/done timer. Stale lazy-deletion entries
                // are safe: landing on one executes a provably empty step
                // (the pop discards it, the ring stays empty), exactly
                // what the stepping kernel does at that time.
                if let Some(&Reverse((at, _, _))) = self.sched.act_heap.peek() {
                    next = next.min(at);
                }
                if let Some(&Reverse((at, _, _))) = self.sched.done_heap.peek() {
                    next = next.min(at);
                }
                // Next scripted/mobility event: land on it so `advance_to`
                // is called at every time the view's state (or its
                // deterministic counters) may change.
                if let Some(e) = self.topo.next_event(gstep) {
                    next = next.min(e.saturating_sub(self.clock));
                }
                // Next pending traffic arrival: an injection is a wake
                // source, so the jump lands on (never beyond) it. Every
                // arrival at or before `local_t` was already applied, so
                // the clamp below cannot move this target into the past.
                if let Some(rec) = injections.get(next_inj) {
                    next = next.min(rec.at);
                }
                // Next waypoint boundary `w` is checked after executing
                // step `w - clock - 1`; land there so the recording keeps
                // the stepped cadence (boundaries beyond the span are not
                // due, so charging past them is exact).
                if J::ENABLED {
                    if let Some(w) = self.journal.next_checkpoint() {
                        next = next.min(w.saturating_sub(self.clock).saturating_sub(1));
                    }
                }
                next.clamp(local_t + 1, max_steps)
            };
            skipped += next - (local_t + 1);
            // Charge the skipped span to the phase clock; if the budget
            // runs out inside it, the phase ends exactly where the
            // stepping kernel's would (`next` is clamped to `max_steps`).
            report.steps = next;
            local_t = next;
        }
        self.stats.scheduler_events += self.sched.pops;
        self.stats.silent_steps_skipped += skipped;
        if M::ENABLED {
            self.tel.observe("sim_topology_advance_micros", advance_nanos / 1_000);
            self.tel.observe("sim_reception_micros", reception_nanos / 1_000);
            self.tel.observe("sim_ring_peak", ring_peak);
            self.tel.observe("sim_heap_peak", heap_peak);
        }
        report
    }
}

/// Resolves the SINR position slice for one step. Free-standing (takes the
/// two fields explicitly) so the kernels can hold disjoint mutable borrows
/// of the rest of [`Sim`] while positions stay alive.
fn sinr_positions<'a, T: TopologyView>(cfg: &'a SinrConfig, topo: &'a T) -> &'a [[f64; 3]] {
    match &cfg.positions {
        PositionSource::Snapshot(points) => points,
        PositionSource::Live => {
            topo.positions().expect("constructor validated the live position feed")
        }
        PositionSource::Geometry => {
            unreachable!("constructor rejects unresolved Geometry position sources")
        }
    }
}

/// Per-axis bounding box of the positions — the domain a spatial index
/// over them must be anchored to (offset or origin-straddling snapshots
/// would otherwise clamp into boundary cells and lose all selectivity).
fn position_bounds(pos: &[[f64; 3]]) -> ([f64; 3], [f64; 3]) {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in pos {
        for axis in 0..3 {
            lo[axis] = lo[axis].min(p[axis]);
            hi[axis] = hi[axis].max(p[axis]);
        }
    }
    (lo, hi)
}

/// Builds the decode-range spatial index over the current positions,
/// anchored one decode range *outside* their bounding box (`(lo, hi)` =
/// [`position_bounds`], hoisted so the caller can also use it for
/// layout-staleness checks). The padding gives live position sources room
/// to drift: an expanding point cloud (a waypoint/walk run still spreading
/// toward its domain edges, an unbounded Lévy flight) stays inside the
/// layout for many steps, so the staleness check re-buckets in place
/// instead of reallocating the grid on every new extent record. Returns
/// the grid together with the padded anchor and domain side it covers —
/// the caller records `(anchor, side)` for the staleness check, so the
/// two derivations cannot drift apart.
///
/// The cell width is the calibrated decode range — floored so the cell
/// count never exceeds ≈ one cell per node (a decode range far below the
/// point spacing would otherwise allocate a uselessly fine grid; wider
/// cells are always correct, just less selective).
fn build_sinr_grid(
    cfg: &SinrConfig,
    pos: &[[f64; 3]],
    lo: [f64; 3],
    hi: [f64; 3],
) -> (SpatialGrid, [f64; 3], f64) {
    let decode = cfg.decode_range();
    let anchor = [lo[0] - decode, lo[1] - decode, lo[2] - decode];
    let span = (0..3).map(|a| hi[a] - lo[a]).fold(0.0f64, f64::max) + 2.0 * decode;
    let side = span.max(decode);
    let dim = if pos.iter().any(|p| p[2] != 0.0) { 3 } else { 2 };
    let per_axis_cap = (pos.len().max(1) as f64).powf(1.0 / dim as f64).ceil().max(1.0);
    let radius = decode.max(side / per_axis_cap);
    (SpatialGrid::with_origin(anchor, side, radius, dim, pos), anchor, side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;

    /// Transmits forever if `active`; records everything heard.
    struct Chatter {
        active: bool,
        heard: Vec<u32>,
    }

    impl Protocol for Chatter {
        type Msg = u32;
        fn act(&mut self, _ctx: &mut NodeCtx<'_>) -> Action<u32> {
            if self.active {
                Action::Transmit(7)
            } else {
                Action::Listen
            }
        }
        fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &u32) {
            self.heard.push(*msg);
        }
    }

    fn chatters(g: &Graph, active: &[usize]) -> Vec<Chatter> {
        g.nodes()
            .map(|v| Chatter { active: active.contains(&v.index()), heard: Vec::new() })
            .collect()
    }

    /// A static view whose listed nodes are permanently jammed listeners.
    /// Supports the change feed (nothing ever changes; the jam set is
    /// static), so it runs under both kernels.
    struct JamView {
        jammed: Vec<bool>,
        jam_list: Vec<NodeId>,
    }

    impl JamView {
        fn new(jammed: Vec<bool>) -> Self {
            let jam_list = jammed
                .iter()
                .enumerate()
                .filter(|(_, &j)| j)
                .map(|(i, _)| NodeId::new(i))
                .collect();
            JamView { jammed, jam_list }
        }
    }

    impl TopologyView for JamView {
        fn advance_to(&mut self, _base: &Graph, _clock: u64) {}
        fn neighbors<'a>(&'a self, base: &'a Graph, v: NodeId) -> &'a [NodeId] {
            base.neighbors(v)
        }
        fn is_active(&self, _v: NodeId) -> bool {
            true
        }
        fn is_jammed(&self, v: NodeId) -> bool {
            self.jammed[v.index()]
        }
        fn supports_change_feed(&self) -> bool {
            true
        }
        fn jammed_nodes(&self) -> &[NodeId] {
            &self.jam_list
        }
    }

    /// A view where one node sleeps until a wake time, with and without a
    /// scheduled return. Implements the change feed (reports the sleeper
    /// when it flips awake), so both kernels handle it.
    struct Sleeper {
        node: usize,
        wake_at: Option<u64>,
        awake: bool,
        changed: Vec<NodeId>,
    }

    impl Sleeper {
        fn new(node: usize, wake_at: Option<u64>) -> Self {
            Sleeper { node, wake_at, awake: false, changed: Vec::new() }
        }
    }

    impl TopologyView for Sleeper {
        fn advance_to(&mut self, _base: &Graph, clock: u64) {
            if let Some(t) = self.wake_at {
                if clock >= t && !self.awake {
                    self.awake = true;
                    self.changed.push(NodeId::new(self.node));
                }
            }
        }
        fn neighbors<'a>(&'a self, base: &'a Graph, v: NodeId) -> &'a [NodeId] {
            base.neighbors(v)
        }
        fn is_active(&self, v: NodeId) -> bool {
            v.index() != self.node || self.awake
        }
        fn is_jammed(&self, _v: NodeId) -> bool {
            false
        }
        fn is_retired(&self, v: NodeId) -> bool {
            !self.is_active(v) && self.wake_at.is_none()
        }
        fn supports_change_feed(&self) -> bool {
            true
        }
        fn drain_status_changes(&mut self, out: &mut Vec<NodeId>) {
            out.append(&mut self.changed);
        }
    }

    #[test]
    fn jammed_listener_hears_nothing_in_protocol_model() {
        // Star, hub 0 transmits; leaf 1 sits next to a (modeled) jammer.
        for kernel in [Kernel::Sparse, Kernel::Dense, Kernel::Event] {
            let g = generators::star(4);
            let info = NetInfo::exact(&g);
            let jam = JamView::new(vec![false, true, false, false]);
            let mut sim = Sim::with_topology(&g, jam, info, 0, ReceptionMode::Protocol);
            sim.set_kernel(kernel);
            let mut states = chatters(&g, &[0]);
            let rep = sim.run_phase(&mut states, 2);
            assert!(states[1].heard.is_empty(), "jammed listener decoded a message");
            assert_eq!(states[2].heard, vec![7, 7]);
            // Lost-to-noise deliveries count as collisions (1 listener × 2 steps).
            assert_eq!(rep.collisions, 2, "{kernel:?}");
            assert_eq!(rep.deliveries, 4, "{kernel:?}");
        }
    }

    #[test]
    fn sinr_jam_collision_needs_a_decodable_signal() {
        // Transmitter 1 is out of decode range of listener 0: jamming node 0
        // must NOT count a collision (nothing was lost). Transmitter close
        // by: it must.
        let far = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mode = |pos: Vec<(f64, f64)>| {
            crate::ReceptionMode::Sinr(crate::SinrConfig::for_unit_range(pos, 1.0))
        };
        let jam = || JamView::new(vec![true, false]);
        let info = NetInfo::exact(&far);

        let mut sim = Sim::with_topology(&far, jam(), info, 0, mode(vec![(0.0, 0.0), (5.0, 0.0)]));
        let mut states =
            vec![Chatter { active: false, heard: vec![] }, Chatter { active: true, heard: vec![] }];
        let rep = sim.run_phase(&mut states, 1);
        assert_eq!(rep.collisions, 0, "undecodable signal cannot be 'lost' to jamming");

        let mut sim = Sim::with_topology(&far, jam(), info, 0, mode(vec![(0.0, 0.0), (0.2, 0.0)]));
        let mut states =
            vec![Chatter { active: false, heard: vec![] }, Chatter { active: true, heard: vec![] }];
        let rep = sim.run_phase(&mut states, 1);
        assert_eq!(rep.collisions, 1, "a decodable signal drowned by noise is a collision");
        assert!(states[0].heard.is_empty());
    }

    #[test]
    fn phase_waits_for_a_node_with_a_scheduled_return() {
        // Hub 0 beacons forever; leaf 2 is asleep until step 5. The phase
        // must keep running past the point where all *currently active*
        // nodes are done, so the sleeper's wake-up is actually simulated.
        for kernel in [Kernel::Sparse, Kernel::Dense, Kernel::Event] {
            let g = generators::star(4);
            let info = NetInfo::exact(&g);
            let topo = Sleeper::new(2, Some(5));
            let mut sim = Sim::with_topology(&g, topo, info, 0, ReceptionMode::Protocol);
            sim.set_kernel(kernel);
            let mut states: Vec<OneShot> =
                g.nodes().map(|v| OneShot { source: v.index() == 0, heard: false }).collect();
            let rep = sim.run_phase(&mut states, 100);
            assert!(rep.completed, "{kernel:?}");
            assert_eq!(rep.steps, 6, "{kernel:?}: must run until the sleeper wakes and hears");
            assert!(states[2].heard, "{kernel:?}");
        }
    }

    #[test]
    fn phase_completes_past_a_retired_node() {
        // Same setup but the sleeper never returns: it is retired, and the
        // phase completes as soon as everyone else is done.
        for kernel in [Kernel::Sparse, Kernel::Dense, Kernel::Event] {
            let g = generators::star(4);
            let info = NetInfo::exact(&g);
            let topo = Sleeper::new(2, None);
            let mut sim = Sim::with_topology(&g, topo, info, 0, ReceptionMode::Protocol);
            sim.set_kernel(kernel);
            let mut states: Vec<OneShot> =
                g.nodes().map(|v| OneShot { source: v.index() == 0, heard: false }).collect();
            let rep = sim.run_phase(&mut states, 100);
            assert!(rep.completed, "{kernel:?}");
            assert_eq!(rep.steps, 1, "{kernel:?}");
            assert!(!states[2].heard, "{kernel:?}");
        }
    }

    #[test]
    fn single_transmitter_delivers() {
        let g = generators::star(4); // hub 0
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states = chatters(&g, &[0]);
        let rep = sim.run_phase(&mut states, 3);
        assert_eq!(rep.steps, 3);
        assert_eq!(rep.transmissions, 3);
        assert_eq!(rep.deliveries, 9); // 3 leaves × 3 steps
        assert_eq!(rep.collisions, 0);
        for state in &states[1..4] {
            assert_eq!(state.heard, vec![7, 7, 7]);
        }
    }

    #[test]
    fn two_transmitters_collide_at_common_neighbor() {
        // Path 1 - 0 - 2: if 1 and 2 transmit, 0 hears nothing.
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states = chatters(&g, &[1, 2]);
        let rep = sim.run_phase(&mut states, 2);
        assert_eq!(rep.deliveries, 0);
        assert_eq!(rep.collisions, 2); // node 0, both steps
        assert!(states[0].heard.is_empty());
    }

    #[test]
    fn transmitter_cannot_hear() {
        // Edge 0 - 1, both transmit: nobody hears.
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states = chatters(&g, &[0, 1]);
        let rep = sim.run_phase(&mut states, 1);
        assert_eq!(rep.deliveries, 0);
        assert_eq!(rep.collisions, 0); // neither was listening
        assert!(states[0].heard.is_empty());
        assert!(states[1].heard.is_empty());
    }

    #[test]
    fn unique_transmitter_among_many_neighbors() {
        // Clique of 4; only node 3 transmits; everyone else hears it.
        let g = generators::complete(4);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states = chatters(&g, &[3]);
        sim.run_phase(&mut states, 1);
        for state in &states[0..3] {
            assert_eq!(state.heard, vec![7]);
        }
    }

    /// Listens until it hears once, then goes idle.
    struct OneShot {
        source: bool,
        heard: bool,
    }

    impl Protocol for OneShot {
        type Msg = ();
        fn act(&mut self, _ctx: &mut NodeCtx<'_>) -> Action<()> {
            if self.source {
                Action::Transmit(())
            } else if self.heard {
                Action::Idle
            } else {
                Action::Listen
            }
        }
        fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &()) {
            self.heard = true;
        }
        fn is_done(&self) -> bool {
            self.heard || self.source
        }
    }

    #[test]
    fn phase_completes_early() {
        let g = generators::star(6);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states: Vec<OneShot> =
            g.nodes().map(|v| OneShot { source: v.index() == 0, heard: false }).collect();
        let rep = sim.run_phase(&mut states, 100);
        assert!(rep.completed);
        assert_eq!(rep.steps, 1);
        assert_eq!(sim.clock(), 1);
    }

    #[test]
    fn idle_nodes_do_not_hear() {
        let g = generators::star(3);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states: Vec<OneShot> =
            g.nodes().map(|v| OneShot { source: v.index() == 0, heard: false }).collect();
        // First step: leaves hear, become idle/done. Run again: no deliveries.
        sim.run_phase(&mut states, 1);
        let rep2 = sim.run_phase(&mut states, 1);
        assert!(rep2.completed);
        assert_eq!(rep2.deliveries, 0);
    }

    #[test]
    fn charge_advances_clock_only() {
        let g = generators::path(4);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        sim.charge(1000);
        assert_eq!(sim.clock(), 1000);
        assert_eq!(sim.stats().charged_steps, 1000);
        assert_eq!(sim.stats().simulated_steps, 0);
    }

    /// A protocol that transmits with probability 1/2 per step.
    struct Coin {
        sent: Vec<bool>,
    }

    impl Protocol for Coin {
        type Msg = ();
        fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<()> {
            let t = ctx.rng.gen_bool(0.5);
            self.sent.push(t);
            if t {
                Action::Transmit(())
            } else {
                Action::Listen
            }
        }
        fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &()) {}
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::cycle(8);
        let run = |seed| {
            let mut sim = Sim::new(&g, NetInfo::exact(&g), seed);
            let mut states: Vec<Coin> = g.nodes().map(|_| Coin { sent: Vec::new() }).collect();
            sim.run_phase(&mut states, 50);
            states.into_iter().map(|c| c.sent).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn kernels_agree_on_randomized_traffic() {
        let g = generators::grid2d(5, 5);
        let run = |kernel| {
            let mut sim = Sim::new(&g, NetInfo::exact(&g), 3);
            sim.set_kernel(kernel);
            let mut states: Vec<Coin> = g.nodes().map(|_| Coin { sent: Vec::new() }).collect();
            let rep = sim.run_phase(&mut states, 40);
            (rep, sim.rng_fingerprint(), states.into_iter().map(|c| c.sent).collect::<Vec<_>>())
        };
        assert_eq!(run(Kernel::Sparse), run(Kernel::Dense));
        assert_eq!(run(Kernel::Sparse), run(Kernel::Event));
    }

    #[test]
    fn kernel_selection_is_visible() {
        let g = generators::path(4);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        assert_eq!(sim.kernel(), Kernel::Sparse);
        sim.set_kernel(Kernel::Dense);
        assert_eq!(sim.kernel(), Kernel::Dense);
    }

    /// A contract-honoring sparse protocol: listens passively, goes done at
    /// a promised step without ever being woken.
    struct TimedListener {
        horizon: u64,
        last_acted: u64,
        heard: usize,
    }

    impl Protocol for TimedListener {
        type Msg = ();
        fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<()> {
            self.last_acted = ctx.time;
            if ctx.time >= self.horizon {
                Action::Idle
            } else {
                Action::Listen
            }
        }
        fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &()) {
            self.heard += 1;
        }
        fn is_done(&self) -> bool {
            self.last_acted + 1 >= self.horizon
        }
        fn next_wake(&self, _now: u64) -> Wake {
            Wake::Listen { wake_at: self.horizon, done_at: Some(self.horizon - 1) }
        }
    }

    #[test]
    fn passive_listener_completes_at_its_promised_step() {
        // Under `Kernel::Event` this phase is all skip: nothing ever acts,
        // so the clock jumps straight to the promised done step.
        for kernel in [Kernel::Sparse, Kernel::Dense, Kernel::Event] {
            let g = generators::star(3);
            let mut sim = Sim::new(&g, NetInfo::exact(&g), 1);
            sim.set_kernel(kernel);
            let mut states = vec![
                TimedListener { horizon: 7, last_acted: 0, heard: 0 },
                TimedListener { horizon: 7, last_acted: 0, heard: 0 },
                TimedListener { horizon: 7, last_acted: 0, heard: 0 },
            ];
            let rep = sim.run_phase(&mut states, 100);
            assert!(rep.completed, "{kernel:?}");
            assert_eq!(rep.steps, 7, "{kernel:?}");
        }
    }

    #[test]
    fn passive_listener_still_hears() {
        // Hub transmits every step; leaves are passive listeners whose act
        // is skipped by the sparse kernel — deliveries must be unaffected.
        for kernel in [Kernel::Sparse, Kernel::Dense, Kernel::Event] {
            let g = generators::star(4);
            let mut sim = Sim::new(&g, NetInfo::exact(&g), 1);
            sim.set_kernel(kernel);
            // Mixed-protocol phases aren't a thing; emulate with Chatter
            // hub by reusing TimedListener's listen window on all and
            // checking hears via a chatter run instead.
            let mut states = chatters(&g, &[0]);
            let rep = sim.run_phase(&mut states, 5);
            assert_eq!(rep.deliveries, 15, "{kernel:?}");
        }
    }

    #[test]
    #[should_panic(expected = "one protocol state per node")]
    fn wrong_state_count_panics() {
        let g = generators::path(4);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states = chatters(&g, &[]);
        states.pop();
        sim.run_phase(&mut states, 1);
    }

    /// Records both messages and collision notifications.
    struct CdChatter {
        active: bool,
        heard: usize,
        collisions: usize,
    }

    impl Protocol for CdChatter {
        type Msg = ();
        fn act(&mut self, _ctx: &mut NodeCtx<'_>) -> Action<()> {
            if self.active {
                Action::Transmit(())
            } else {
                Action::Listen
            }
        }
        fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &()) {
            self.heard += 1;
        }
        fn on_collision(&mut self, _ctx: &mut NodeCtx<'_>) {
            self.collisions += 1;
        }
    }

    #[test]
    fn collision_detection_notifies() {
        // Path 1 - 0 - 2: both leaves transmit; with CD the center is told
        // about the collision, without CD it hears nothing at all.
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let mk = |g: &Graph| -> Vec<CdChatter> {
            g.nodes()
                .map(|v| CdChatter { active: v.index() != 0, heard: 0, collisions: 0 })
                .collect()
        };
        let info = NetInfo::exact(&g);
        let mut sim = Sim::with_reception(&g, info, 0, crate::ReceptionMode::ProtocolCd);
        let mut states = mk(&g);
        sim.run_phase(&mut states, 2);
        assert_eq!(states[0].collisions, 2);
        assert_eq!(states[0].heard, 0);

        let mut sim = Sim::new(&g, info, 0);
        let mut states = mk(&g);
        sim.run_phase(&mut states, 2);
        assert_eq!(states[0].collisions, 0, "default model must never notify");
    }

    #[test]
    fn cd_jam_signal_reaches_silent_listeners_in_both_kernels() {
        // No transmitter at all; node 0 is jam-exposed. With CD it must be
        // told each step (jamming is indistinguishable from a collision).
        for kernel in [Kernel::Sparse, Kernel::Dense, Kernel::Event] {
            let g = generators::star(3);
            let info = NetInfo::exact(&g);
            let jam = JamView::new(vec![true, false, false]);
            let mut sim = Sim::with_topology(&g, jam, info, 0, ReceptionMode::ProtocolCd);
            sim.set_kernel(kernel);
            let mut states: Vec<CdChatter> =
                g.nodes().map(|_| CdChatter { active: false, heard: 0, collisions: 0 }).collect();
            let rep = sim.run_phase(&mut states, 3);
            assert_eq!(states[0].collisions, 3, "{kernel:?}");
            assert_eq!(rep.collisions, 0, "{kernel:?}: nothing was actually lost");
        }
    }

    #[test]
    fn sinr_capture_effect() {
        // Listener 0 at origin; transmitter 1 very close, transmitter 2 far.
        // Protocol model: collision (both are neighbors). SINR: node 1's
        // signal dominates and is decoded — the capture effect the protocol
        // model abstracts away (paper, footnote 1).
        let g = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]).unwrap();
        let positions = vec![(0.0, 0.0), (0.1, 0.0), (0.9, 0.0)];
        let info = NetInfo::exact(&g);
        let mode = crate::ReceptionMode::Sinr(crate::SinrConfig::for_unit_range(positions, 1.0));
        let mut sim = Sim::with_reception(&g, info, 0, mode);
        let mut states: Vec<Chatter> =
            g.nodes().map(|v| Chatter { active: v.index() != 0, heard: Vec::new() }).collect();
        let rep = sim.run_phase(&mut states, 1);
        assert_eq!(rep.deliveries, 1);
        assert_eq!(states[0].heard, vec![7]);

        // Same setup under the protocol model: nothing gets through.
        let mut sim = Sim::new(&g, info, 0);
        let mut states: Vec<Chatter> =
            g.nodes().map(|v| Chatter { active: v.index() != 0, heard: Vec::new() }).collect();
        let rep = sim.run_phase(&mut states, 1);
        assert_eq!(rep.deliveries, 0);
        assert!(states[0].heard.is_empty());
    }

    #[test]
    fn sinr_far_transmitter_not_heard() {
        // A single transmitter beyond the calibrated range is too weak.
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let positions = vec![(0.0, 0.0), (2.0, 0.0)];
        let info = NetInfo::exact(&g);
        let mode = crate::ReceptionMode::Sinr(crate::SinrConfig::for_unit_range(positions, 1.0));
        let mut sim = Sim::with_reception(&g, info, 0, mode);
        let mut states = vec![
            Chatter { active: false, heard: Vec::new() },
            Chatter { active: true, heard: Vec::new() },
        ];
        let rep = sim.run_phase(&mut states, 1);
        assert_eq!(rep.deliveries, 0);
    }

    #[test]
    #[should_panic(expected = "one position per node")]
    fn sinr_position_count_checked() {
        let g = generators::path(3);
        let mode =
            crate::ReceptionMode::Sinr(crate::SinrConfig::for_unit_range(vec![(0.0, 0.0)], 1.0));
        let _ = Sim::with_reception(&g, NetInfo::exact(&g), 0, mode);
    }

    #[test]
    fn try_constructors_report_clean_errors() {
        use crate::reception::{PositionSource, SinrConfig};
        use crate::SimError;
        let g = generators::path(4);
        let info = NetInfo::exact(&g);
        // Snapshot count mismatch.
        let mode = crate::ReceptionMode::Sinr(SinrConfig::for_unit_range(vec![(0.0, 0.0)], 1.0));
        let err = Sim::try_with_reception(&g, info, 0, mode).unwrap_err();
        assert_eq!(err, SimError::PositionCount { nodes: 4, positions: 1 });
        assert!(err.to_string().contains("one position per node"), "{err}");
        // Live positions over a view with no geometry.
        let mode =
            crate::ReceptionMode::Sinr(SinrConfig::for_unit_range(PositionSource::Live, 1.0));
        let err = Sim::try_with_reception(&g, info, 0, mode).unwrap_err();
        assert_eq!(err, SimError::NoLivePositions);
        // Unresolved Geometry source.
        let err = Sim::try_with_reception(
            &g,
            info,
            0,
            crate::ReceptionMode::Sinr(SinrConfig::geometric()),
        )
        .unwrap_err();
        assert_eq!(err, SimError::UnresolvedGeometry);
        // Degenerate physics.
        let mut cfg = SinrConfig::for_unit_range(vec![(0.0, 0.0); 4], 1.0);
        cfg.noise = -1.0;
        let err =
            Sim::try_with_reception(&g, info, 0, crate::ReceptionMode::Sinr(cfg)).unwrap_err();
        assert!(matches!(err, SimError::Config(_)), "{err:?}");
        // The protocol models never fail.
        assert!(Sim::try_new(&g, info, 0).is_ok());
        assert!(Sim::try_with_reception(&g, info, 0, crate::ReceptionMode::ProtocolCd).is_ok());
    }

    /// A feed-less view: forces the dense fallback under `Kernel::Sparse`.
    struct NoFeed;

    impl TopologyView for NoFeed {
        fn advance_to(&mut self, _base: &Graph, _clock: u64) {}
        fn neighbors<'a>(&'a self, base: &'a Graph, v: NodeId) -> &'a [NodeId] {
            base.neighbors(v)
        }
        fn is_active(&self, _v: NodeId) -> bool {
            true
        }
        fn is_jammed(&self, _v: NodeId) -> bool {
            false
        }
    }

    #[test]
    fn kernel_fallback_is_recorded_not_silent() {
        let g = generators::star(4);
        let info = NetInfo::exact(&g);
        // Sparse requested over a feed-less view: dense runs, and says so.
        let mut sim = Sim::with_topology(&g, NoFeed, info, 0, ReceptionMode::Protocol);
        let mut states = chatters(&g, &[0]);
        let rep = sim.run_phase(&mut states, 2);
        assert!(rep.fell_back, "fallback must be visible in the report");
        let rep2 = sim.run_phase(&mut states, 1);
        assert!(rep2.fell_back);
        assert_eq!(sim.stats().kernel_fallbacks, 2, "one count per fallen-back phase");
        // Dense requested explicitly: not a fallback.
        let mut sim = Sim::with_topology(&g, NoFeed, info, 0, ReceptionMode::Protocol);
        sim.set_kernel(Kernel::Dense);
        let rep = sim.run_phase(&mut chatters(&g, &[0]), 2);
        assert!(!rep.fell_back);
        assert_eq!(sim.stats().kernel_fallbacks, 0);
        // Sparse over a feed-supporting view: no fallback.
        let mut sim = Sim::new(&g, info, 0);
        let rep = sim.run_phase(&mut chatters(&g, &[0]), 2);
        assert!(!rep.fell_back);
        assert_eq!(sim.stats().kernel_fallbacks, 0);
        // Event over a feed-less view: dense runs, and says so.
        let mut sim = Sim::with_topology(&g, NoFeed, info, 0, ReceptionMode::Protocol);
        sim.set_kernel(Kernel::Event);
        let rep = sim.run_phase(&mut chatters(&g, &[0]), 2);
        assert!(rep.fell_back, "event over a feed-less view is a (dense) fallback");
        // Event over a change-feed view with no `next_event` support: the
        // sparse body runs, still recorded as a fallback.
        let jam = JamView::new(vec![false; 4]);
        let mut sim = Sim::with_topology(&g, jam, info, 0, ReceptionMode::Protocol);
        sim.set_kernel(Kernel::Event);
        let rep = sim.run_phase(&mut chatters(&g, &[0]), 2);
        assert!(rep.fell_back, "event without jump support is a (sparse) fallback");
        assert_eq!(sim.stats().kernel_fallbacks, 1);
        // Event over a jump-capable view: no fallback.
        let mut sim = Sim::new(&g, info, 0);
        sim.set_kernel(Kernel::Event);
        let rep = sim.run_phase(&mut chatters(&g, &[0]), 2);
        assert!(!rep.fell_back);
        assert_eq!(sim.stats().kernel_fallbacks, 0);
    }

    /// Scattered unit-disk-style points for SINR kernel tests.
    fn scatter(n: usize, side: f64, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| [rng.gen::<f64>() * side, rng.gen::<f64>() * side, 0.0]).collect()
    }

    #[test]
    fn sinr_kernels_agree_on_randomized_traffic() {
        use crate::reception::SinrConfig;
        let g = generators::grid2d(6, 6);
        let pts = scatter(g.n(), 5.0, 17);
        let run = |kernel| {
            let mode = crate::ReceptionMode::Sinr(SinrConfig::for_unit_range(pts.clone(), 1.0));
            let mut sim = Sim::with_reception(&g, NetInfo::exact(&g), 3, mode);
            sim.set_kernel(kernel);
            let mut states: Vec<Coin> = g.nodes().map(|_| Coin { sent: Vec::new() }).collect();
            let rep = sim.run_phase(&mut states, 60);
            (rep, sim.stats().kernel_invariant(), sim.rng_fingerprint())
        };
        let (sparse, dense) = (run(Kernel::Sparse), run(Kernel::Dense));
        assert_eq!(sparse, dense);
        assert_eq!(sparse, run(Kernel::Event));
        assert!(sparse.0.deliveries > 0, "degenerate test: nothing was ever delivered");
    }

    #[test]
    fn sinr_kernels_agree_on_offset_and_negative_snapshots() {
        // Deployments centered on the origin or far from it: the index
        // anchors at the bounding box, and results still match dense.
        use crate::reception::SinrConfig;
        let g = generators::grid2d(5, 5);
        for offset in [-4.0, 0.0, 1000.0] {
            let pts: Vec<[f64; 3]> = scatter(g.n(), 8.0, 31)
                .into_iter()
                .map(|p| [p[0] + offset, p[1] + offset, 0.0])
                .collect();
            let run = |kernel| {
                let mode = crate::ReceptionMode::Sinr(SinrConfig::for_unit_range(pts.clone(), 1.0));
                let mut sim = Sim::with_reception(&g, NetInfo::exact(&g), 5, mode);
                sim.set_kernel(kernel);
                let mut states: Vec<Coin> = g.nodes().map(|_| Coin { sent: Vec::new() }).collect();
                let rep = sim.run_phase(&mut states, 40);
                (rep, sim.rng_fingerprint())
            };
            let (sparse, dense) = (run(Kernel::Sparse), run(Kernel::Dense));
            assert_eq!(sparse, dense, "offset {offset}");
            assert_eq!(sparse, run(Kernel::Event), "offset {offset}");
            assert!(sparse.0.deliveries > 0, "offset {offset}: nothing delivered");
        }
    }

    #[test]
    fn sinr_sparse_runs_sparse_no_fallback() {
        use crate::reception::SinrConfig;
        let g = generators::grid2d(4, 4);
        let pts = scatter(g.n(), 4.0, 2);
        let mode = crate::ReceptionMode::Sinr(SinrConfig::for_unit_range(pts, 1.0));
        let mut sim = Sim::with_reception(&g, NetInfo::exact(&g), 1, mode);
        assert_eq!(sim.kernel(), Kernel::Sparse);
        let rep = sim.run_phase(&mut chatters(&g, &[0]), 3);
        assert!(!rep.fell_back, "SINR no longer forces the dense kernel");
        assert_eq!(sim.stats().kernel_fallbacks, 0);
    }

    #[test]
    fn sinr_cutoff_approximates_exact() {
        use crate::reception::{FarFieldPolicy, SinrConfig};
        // A dense cluster of chatterers: with a loose eps the cutoff may
        // flip borderline collisions into deliveries (one-sided), with a
        // tight eps it must match Exact exactly on this instance.
        let g = generators::complete(12);
        let pts = scatter(g.n(), 6.0, 23);
        let run = |far_field| {
            let mode = crate::ReceptionMode::Sinr(
                SinrConfig::for_unit_range(pts.clone(), 1.0).with_far_field(far_field),
            );
            let mut sim = Sim::with_reception(&g, NetInfo::exact(&g), 9, mode);
            let mut states: Vec<Coin> = g.nodes().map(|_| Coin { sent: Vec::new() }).collect();
            let rep = sim.run_phase(&mut states, 80);
            (rep, sim.rng_fingerprint())
        };
        let exact = run(FarFieldPolicy::Exact);
        let tight = run(FarFieldPolicy::Cutoff(1e-9));
        assert_eq!(exact, tight, "a tight epsilon must reproduce Exact here");
        let loose = run(FarFieldPolicy::Cutoff(0.5));
        // One-sided error: truncating interference can only help decoding.
        assert!(loose.0.deliveries >= exact.0.deliveries);
        assert!(loose.0.transmissions == exact.0.transmissions);
    }

    #[test]
    fn kernels_emit_identical_invariant_event_streams() {
        use radionet_journal::{bisect, ClassMask, Recorder};
        let g = generators::grid2d(5, 5);
        let run = |kernel: Kernel| {
            let mut sim = Sim::try_with_journal(
                &g,
                StaticTopology,
                NetInfo::exact(&g),
                3,
                ReceptionMode::Protocol,
                Recorder::new(ClassMask::ALL, 8),
            )
            .unwrap();
            sim.set_kernel(kernel);
            let mut states: Vec<Coin> = g.nodes().map(|_| Coin { sent: Vec::new() }).collect();
            sim.run_phase(&mut states, 40);
            let fp = sim.rng_fingerprint();
            sim.into_journal().into_journal("test", kernel.name(), None, fp, 0)
        };
        let sparse = run(Kernel::Sparse);
        let dense = run(Kernel::Dense);
        let event = run(Kernel::Event);
        // The schedulers differ by design (hints exist only sparsely)…
        assert!(sparse.summary().sched > 0);
        assert_eq!(dense.summary().sched, 0);
        // …but the kernel-invariant stream, the waypoint digests, and the
        // RNG fingerprints are identical.
        assert_eq!(sparse.waypoints, dense.waypoints);
        assert!(!sparse.waypoints.is_empty());
        let report = bisect(&sparse, &dense, ClassMask::ALL);
        assert!(!report.is_divergent(), "{report}");
        assert!(report.left_events > 0);
        // The event kernel must reproduce the sparse journal byte-for-byte
        // — waypoints landed on the same steps, same full event stream.
        assert_eq!(sparse.waypoints, event.waypoints);
        let report = bisect(&sparse, &event, ClassMask::ALL);
        assert!(!report.is_divergent(), "{report}");
    }

    #[test]
    fn status_flips_recorded_identically_by_both_kernels() {
        use radionet_journal::{ClassMask, EventClass, Recorder};
        let run = |kernel: Kernel| {
            let g = generators::star(4);
            let mut sim = Sim::try_with_journal(
                &g,
                Sleeper::new(2, Some(5)),
                NetInfo::exact(&g),
                0,
                ReceptionMode::Protocol,
                Recorder::new(ClassMask::NONE.with(EventClass::Topology), 0),
            )
            .unwrap();
            sim.set_kernel(kernel);
            let mut states: Vec<OneShot> =
                g.nodes().map(|v| OneShot { source: v.index() == 0, heard: false }).collect();
            sim.run_phase(&mut states, 100);
            let mut events = sim.into_journal().events().to_vec();
            events.sort_by_key(radionet_journal::Event::order_key);
            events
        };
        let sparse = run(Kernel::Sparse);
        let dense = run(Kernel::Dense);
        assert_eq!(sparse, dense);
        assert_eq!(sparse, run(Kernel::Event));
        assert_eq!(sparse.len(), 1, "exactly the sleeper's wake-up: {sparse:?}");
        assert_eq!(sparse[0].step, 5);
        assert_eq!(sparse[0].kind.node(), Some(2));
    }

    #[test]
    fn sinr_capture_effect_both_kernels() {
        // The capture-effect scenario of `sinr_capture_effect`, pinned on
        // every kernel explicitly.
        for kernel in [Kernel::Sparse, Kernel::Dense, Kernel::Event] {
            let g = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]).unwrap();
            let positions = vec![(0.0, 0.0), (0.1, 0.0), (0.9, 0.0)];
            let mode =
                crate::ReceptionMode::Sinr(crate::SinrConfig::for_unit_range(positions, 1.0));
            let mut sim = Sim::with_reception(&g, NetInfo::exact(&g), 0, mode);
            sim.set_kernel(kernel);
            let mut states: Vec<Chatter> =
                g.nodes().map(|v| Chatter { active: v.index() != 0, heard: Vec::new() }).collect();
            let rep = sim.run_phase(&mut states, 1);
            assert_eq!(rep.deliveries, 1, "{kernel:?}");
            assert_eq!(states[0].heard, vec![7], "{kernel:?}");
        }
    }
}
