//! The phase-based simulation engine.

use crate::protocol::{Action, NetInfo, NodeCtx, Protocol};
use crate::reception::ReceptionMode;
use crate::stats::SimStats;
use crate::topology::{StaticTopology, TopologyView};
use radionet_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Outcome of one [`Sim::run_phase`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseReport {
    /// Simulated time-steps consumed by the phase.
    pub steps: u64,
    /// Total transmissions during the phase.
    pub transmissions: u64,
    /// Successful deliveries (listener with exactly one transmitting neighbor).
    pub deliveries: u64,
    /// Collisions (listener with ≥ 2 transmitting neighbors in a step).
    pub collisions: u64,
    /// Whether every node reported [`Protocol::is_done`] before the budget.
    pub completed: bool,
}

/// A radio-network simulation bound to one graph, seen through a
/// [`TopologyView`].
///
/// Holds per-node RNGs that persist across phases, the global clock, and
/// cumulative [`SimStats`]. A multi-phase algorithm (e.g. `Compete`) runs
/// each stage with [`run_phase`](Sim::run_phase), optionally adding charged
/// oracle costs with [`charge`](Sim::charge); everything is a deterministic
/// function of `(graph, topology, info, seed)`.
///
/// The default view, [`StaticTopology`], reproduces the paper's model (the
/// whole base graph, synchronous wake-up, no interference beyond
/// collisions). Dynamic views — churn, partitions, jammers — are consulted
/// once per simulated step and may change what the engine sees; see
/// `radionet-scenario`.
#[derive(Debug)]
pub struct Sim<'g, T: TopologyView = StaticTopology> {
    graph: &'g Graph,
    topo: T,
    info: NetInfo,
    rngs: Vec<SmallRng>,
    clock: u64,
    stats: SimStats,
    reception: ReceptionMode,
    // Scratch buffers reused across steps (stamp technique avoids O(n) clears).
    stamp: Vec<u64>,
    count: Vec<u32>,
    from: Vec<u32>,
    stamp_epoch: u64,
}

impl<'g> Sim<'g> {
    /// Creates a simulation over `graph` with the given network estimates
    /// and master seed, under the paper's protocol model.
    pub fn new(graph: &'g Graph, info: NetInfo, seed: u64) -> Self {
        Self::with_reception(graph, info, seed, ReceptionMode::Protocol)
    }

    /// Creates a simulation under an explicit [`ReceptionMode`] (collision
    /// detection or SINR; see the `reception` module docs).
    ///
    /// # Panics
    ///
    /// Panics if an SINR mode supplies a position count different from the
    /// node count.
    pub fn with_reception(
        graph: &'g Graph,
        info: NetInfo,
        seed: u64,
        reception: ReceptionMode,
    ) -> Self {
        Self::with_topology(graph, StaticTopology, info, seed, reception)
    }
}

impl<'g, T: TopologyView> Sim<'g, T> {
    /// Creates a simulation whose per-step topology is `topo`'s view over
    /// `graph` (the dynamic-network entry point).
    ///
    /// # Panics
    ///
    /// Panics if an SINR mode supplies a position count different from the
    /// node count.
    pub fn with_topology(
        graph: &'g Graph,
        topo: T,
        info: NetInfo,
        seed: u64,
        reception: ReceptionMode,
    ) -> Self {
        if let ReceptionMode::Sinr(cfg) = &reception {
            assert_eq!(cfg.positions.len(), graph.n(), "one position per node");
        }
        let mut master = SmallRng::seed_from_u64(seed);
        let rngs = (0..graph.n()).map(|_| SmallRng::seed_from_u64(master.gen())).collect();
        Sim {
            graph,
            topo,
            info,
            rngs,
            clock: 0,
            stats: SimStats::default(),
            reception,
            stamp: vec![0; graph.n()],
            count: vec![0; graph.n()],
            from: vec![0; graph.n()],
            stamp_epoch: 0,
        }
    }

    /// The active reception mode.
    pub fn reception(&self) -> &ReceptionMode {
        &self.reception
    }

    /// The immutable base graph (what the setup-stage algorithms — MIS
    /// validation, schedule construction — reason about; the per-step
    /// topology may show less).
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The topology view.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The network estimates every node receives.
    pub fn info(&self) -> &NetInfo {
        &self.info
    }

    /// Global clock: simulated plus charged steps so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Adds `steps` *charged* (oracle) time-steps: the clock advances but
    /// nothing is simulated. Used to account for black-boxed subroutines
    /// (see DESIGN.md substitution S1); tracked separately in [`SimStats`].
    pub fn charge(&mut self, steps: u64) {
        self.clock += steps;
        self.stats.charged_steps += steps;
    }

    /// Runs one phase: every node executes `states[v]` until all *active*
    /// nodes are done or `max_steps` elapse.
    ///
    /// `states` must hold exactly one protocol state per node, indexed by
    /// [`NodeId::index`]. States are left in their final condition so the
    /// caller can extract outputs.
    ///
    /// Each step the engine first advances the topology view to the global
    /// clock, then skips inactive nodes entirely (they neither act nor
    /// hear, and their RNG streams do not advance while inactive) and
    /// suppresses delivery to jammed listeners (with collision detection,
    /// jamming is heard as a collision). Under the protocol models,
    /// transmissions route over the view's *current* edges; under SINR,
    /// reception is purely positional, so structural events (edge fades,
    /// partitions) do not apply — only node activity and jamming do.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph.n()`.
    pub fn run_phase<P: Protocol>(&mut self, states: &mut [P], max_steps: u64) -> PhaseReport {
        assert_eq!(states.len(), self.graph.n(), "one protocol state per node");
        let mut report = PhaseReport {
            steps: 0,
            transmissions: 0,
            deliveries: 0,
            collisions: 0,
            completed: false,
        };
        if states.iter().all(|s| s.is_done()) {
            report.completed = true;
            return report;
        }
        // (transmitter, message) pairs of the current step.
        let mut transmitters: Vec<(NodeId, P::Msg)> = Vec::new();
        // Which nodes listened this step (act returned Listen).
        let mut listening = vec![false; states.len()];

        for local_t in 0..max_steps {
            self.topo.advance_to(self.graph, self.clock + report.steps);
            transmitters.clear();
            self.stamp_epoch += 1;
            for (i, state) in states.iter_mut().enumerate() {
                if !self.topo.is_active(NodeId::new(i)) {
                    listening[i] = false;
                    continue;
                }
                let mut ctx = NodeCtx { time: local_t, info: &self.info, rng: &mut self.rngs[i] };
                match state.act(&mut ctx) {
                    Action::Transmit(m) => {
                        listening[i] = false;
                        transmitters.push((NodeId::new(i), m));
                    }
                    Action::Listen => listening[i] = true,
                    Action::Idle => listening[i] = false,
                }
            }
            report.transmissions += transmitters.len() as u64;
            if let ReceptionMode::Sinr(cfg) = &self.reception {
                // SINR reception (footnote 1): a listener decodes the
                // strongest transmitter iff its SINR clears the threshold,
                // regardless of graph adjacency. Reception is physical, so
                // the topology view's *structural* events (edge fades,
                // partitions) do not apply here — radio waves ignore
                // logical cuts; only node state (activity, jamming)
                // matters.
                for (i, &l) in listening.iter().enumerate() {
                    if !l || transmitters.is_empty() {
                        continue;
                    }
                    let mut total = 0.0;
                    let mut best_gain = 0.0;
                    let mut best_ti = usize::MAX;
                    for (ti, (u, _)) in transmitters.iter().enumerate() {
                        let gain = cfg.gain(cfg.dist(u.index(), i));
                        total += gain;
                        if gain > best_gain {
                            best_gain = gain;
                            best_ti = ti;
                        }
                    }
                    if self.topo.is_jammed(NodeId::new(i)) {
                        // Broadband noise at the receiver: nothing decodes;
                        // it only counts as a collision if a signal that
                        // was decodable in isolation got drowned.
                        if best_gain / cfg.noise >= cfg.threshold {
                            report.collisions += 1;
                        }
                        continue;
                    }
                    let sinr = best_gain / (cfg.noise + (total - best_gain));
                    if sinr >= cfg.threshold {
                        let msg = &transmitters[best_ti].1;
                        let mut ctx =
                            NodeCtx { time: local_t, info: &self.info, rng: &mut self.rngs[i] };
                        states[i].on_hear(&mut ctx, msg);
                        report.deliveries += 1;
                    } else if best_gain / cfg.noise >= cfg.threshold {
                        // Decodable in isolation, lost to interference.
                        report.collisions += 1;
                    }
                }
            } else {
                // Protocol model: mark reception counts on neighbors of
                // transmitters, over the *current* topology.
                for (ti, &(u, _)) in transmitters.iter().enumerate() {
                    for &w in self.topo.neighbors(self.graph, u) {
                        let wi = w.index();
                        if self.stamp[wi] != self.stamp_epoch {
                            self.stamp[wi] = self.stamp_epoch;
                            self.count[wi] = 0;
                        }
                        self.count[wi] += 1;
                        self.from[wi] = ti as u32;
                    }
                }
                // Deliver to unique-transmitter, unjammed listeners.
                for (ti, &(u, _)) in transmitters.iter().enumerate() {
                    for &w in self.topo.neighbors(self.graph, u) {
                        let wi = w.index();
                        if listening[wi]
                            && self.stamp[wi] == self.stamp_epoch
                            && self.count[wi] == 1
                            && self.from[wi] == ti as u32
                            && !self.topo.is_jammed(w)
                        {
                            let msg = &transmitters[ti].1;
                            let mut ctx = NodeCtx {
                                time: local_t,
                                info: &self.info,
                                rng: &mut self.rngs[wi],
                            };
                            states[wi].on_hear(&mut ctx, msg);
                            report.deliveries += 1;
                        }
                    }
                }
                // Collisions: listeners with ≥ 2 transmitting neighbors, or
                // a jammed listener losing a real signal to noise. With
                // collision detection the listener is told — and jamming is
                // indistinguishable from a collision, so a jammed listener
                // hears the collision signal even in an otherwise silent
                // step.
                let cd = self.reception == ReceptionMode::ProtocolCd;
                for (i, &l) in listening.iter().enumerate() {
                    if !l {
                        continue;
                    }
                    let hits = if self.stamp[i] == self.stamp_epoch { self.count[i] } else { 0 };
                    let jammed = self.topo.is_jammed(NodeId::new(i));
                    if hits >= 2 || (jammed && hits >= 1) {
                        report.collisions += 1;
                    }
                    if cd && (hits >= 2 || jammed) {
                        let mut ctx =
                            NodeCtx { time: local_t, info: &self.info, rng: &mut self.rngs[i] };
                        states[i].on_collision(&mut ctx);
                    }
                }
            }
            report.steps += 1;
            // A phase completes when every node is either done or *retired*
            // (inactive with no scheduled return). A node that is merely
            // asleep, crashed-but-rejoining, or jamming-for-a-window keeps
            // the phase running so its return is actually simulated.
            if states
                .iter()
                .enumerate()
                .all(|(i, s)| s.is_done() || self.topo.is_retired(NodeId::new(i)))
            {
                report.completed = true;
                break;
            }
        }
        self.clock += report.steps;
        self.stats.absorb_phase(&report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;

    /// Transmits forever if `active`; records everything heard.
    struct Chatter {
        active: bool,
        heard: Vec<u32>,
    }

    impl Protocol for Chatter {
        type Msg = u32;
        fn act(&mut self, _ctx: &mut NodeCtx<'_>) -> Action<u32> {
            if self.active {
                Action::Transmit(7)
            } else {
                Action::Listen
            }
        }
        fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &u32) {
            self.heard.push(*msg);
        }
    }

    fn chatters(g: &Graph, active: &[usize]) -> Vec<Chatter> {
        g.nodes()
            .map(|v| Chatter { active: active.contains(&v.index()), heard: Vec::new() })
            .collect()
    }

    /// A static view whose listed nodes are permanently jammed listeners.
    struct JamView(Vec<bool>);

    impl TopologyView for JamView {
        fn advance_to(&mut self, _base: &Graph, _clock: u64) {}
        fn neighbors<'a>(&'a self, base: &'a Graph, v: NodeId) -> &'a [NodeId] {
            base.neighbors(v)
        }
        fn is_active(&self, _v: NodeId) -> bool {
            true
        }
        fn is_jammed(&self, v: NodeId) -> bool {
            self.0[v.index()]
        }
    }

    /// A view where one node sleeps until a wake time, with and without a
    /// scheduled return.
    struct Sleeper {
        node: usize,
        wake_at: Option<u64>,
        awake: bool,
    }

    impl TopologyView for Sleeper {
        fn advance_to(&mut self, _base: &Graph, clock: u64) {
            if let Some(t) = self.wake_at {
                if clock >= t {
                    self.awake = true;
                }
            }
        }
        fn neighbors<'a>(&'a self, base: &'a Graph, v: NodeId) -> &'a [NodeId] {
            base.neighbors(v)
        }
        fn is_active(&self, v: NodeId) -> bool {
            v.index() != self.node || self.awake
        }
        fn is_jammed(&self, _v: NodeId) -> bool {
            false
        }
        fn is_retired(&self, v: NodeId) -> bool {
            !self.is_active(v) && self.wake_at.is_none()
        }
    }

    #[test]
    fn jammed_listener_hears_nothing_in_protocol_model() {
        // Star, hub 0 transmits; leaf 1 sits next to a (modeled) jammer.
        let g = generators::star(4);
        let info = NetInfo::exact(&g);
        let jam = JamView(vec![false, true, false, false]);
        let mut sim = Sim::with_topology(&g, jam, info, 0, ReceptionMode::Protocol);
        let mut states = chatters(&g, &[0]);
        let rep = sim.run_phase(&mut states, 2);
        assert!(states[1].heard.is_empty(), "jammed listener decoded a message");
        assert_eq!(states[2].heard, vec![7, 7]);
        // The lost-to-noise deliveries count as collisions (1 listener × 2 steps).
        assert_eq!(rep.collisions, 2);
        assert_eq!(rep.deliveries, 4);
    }

    #[test]
    fn sinr_jam_collision_needs_a_decodable_signal() {
        // Transmitter 1 is out of decode range of listener 0: jamming node 0
        // must NOT count a collision (nothing was lost). Transmitter close
        // by: it must.
        let far = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mode = |pos: Vec<(f64, f64)>| {
            crate::ReceptionMode::Sinr(crate::SinrConfig::for_unit_range(pos, 1.0))
        };
        let jam = || JamView(vec![true, false]);
        let info = NetInfo::exact(&far);

        let mut sim = Sim::with_topology(&far, jam(), info, 0, mode(vec![(0.0, 0.0), (5.0, 0.0)]));
        let mut states =
            vec![Chatter { active: false, heard: vec![] }, Chatter { active: true, heard: vec![] }];
        let rep = sim.run_phase(&mut states, 1);
        assert_eq!(rep.collisions, 0, "undecodable signal cannot be 'lost' to jamming");

        let mut sim = Sim::with_topology(&far, jam(), info, 0, mode(vec![(0.0, 0.0), (0.2, 0.0)]));
        let mut states =
            vec![Chatter { active: false, heard: vec![] }, Chatter { active: true, heard: vec![] }];
        let rep = sim.run_phase(&mut states, 1);
        assert_eq!(rep.collisions, 1, "a decodable signal drowned by noise is a collision");
        assert!(states[0].heard.is_empty());
    }

    #[test]
    fn phase_waits_for_a_node_with_a_scheduled_return() {
        // Hub 0 beacons forever; leaf 2 is asleep until step 5. The phase
        // must keep running past the point where all *currently active*
        // nodes are done, so the sleeper's wake-up is actually simulated.
        let g = generators::star(4);
        let info = NetInfo::exact(&g);
        let topo = Sleeper { node: 2, wake_at: Some(5), awake: false };
        let mut sim = Sim::with_topology(&g, topo, info, 0, ReceptionMode::Protocol);
        let mut states: Vec<OneShot> =
            g.nodes().map(|v| OneShot { source: v.index() == 0, heard: false }).collect();
        let rep = sim.run_phase(&mut states, 100);
        assert!(rep.completed);
        assert_eq!(rep.steps, 6, "must run until the sleeper wakes at t=5 and hears");
        assert!(states[2].heard);
    }

    #[test]
    fn phase_completes_past_a_retired_node() {
        // Same setup but the sleeper never returns: it is retired, and the
        // phase completes as soon as everyone else is done.
        let g = generators::star(4);
        let info = NetInfo::exact(&g);
        let topo = Sleeper { node: 2, wake_at: None, awake: false };
        let mut sim = Sim::with_topology(&g, topo, info, 0, ReceptionMode::Protocol);
        let mut states: Vec<OneShot> =
            g.nodes().map(|v| OneShot { source: v.index() == 0, heard: false }).collect();
        let rep = sim.run_phase(&mut states, 100);
        assert!(rep.completed);
        assert_eq!(rep.steps, 1);
        assert!(!states[2].heard);
    }

    #[test]
    fn single_transmitter_delivers() {
        let g = generators::star(4); // hub 0
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states = chatters(&g, &[0]);
        let rep = sim.run_phase(&mut states, 3);
        assert_eq!(rep.steps, 3);
        assert_eq!(rep.transmissions, 3);
        assert_eq!(rep.deliveries, 9); // 3 leaves × 3 steps
        assert_eq!(rep.collisions, 0);
        for state in &states[1..4] {
            assert_eq!(state.heard, vec![7, 7, 7]);
        }
    }

    #[test]
    fn two_transmitters_collide_at_common_neighbor() {
        // Path 1 - 0 - 2: if 1 and 2 transmit, 0 hears nothing.
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states = chatters(&g, &[1, 2]);
        let rep = sim.run_phase(&mut states, 2);
        assert_eq!(rep.deliveries, 0);
        assert_eq!(rep.collisions, 2); // node 0, both steps
        assert!(states[0].heard.is_empty());
    }

    #[test]
    fn transmitter_cannot_hear() {
        // Edge 0 - 1, both transmit: nobody hears.
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states = chatters(&g, &[0, 1]);
        let rep = sim.run_phase(&mut states, 1);
        assert_eq!(rep.deliveries, 0);
        assert_eq!(rep.collisions, 0); // neither was listening
        assert!(states[0].heard.is_empty());
        assert!(states[1].heard.is_empty());
    }

    #[test]
    fn unique_transmitter_among_many_neighbors() {
        // Clique of 4; only node 3 transmits; everyone else hears it.
        let g = generators::complete(4);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states = chatters(&g, &[3]);
        sim.run_phase(&mut states, 1);
        for state in &states[0..3] {
            assert_eq!(state.heard, vec![7]);
        }
    }

    /// Listens until it hears once, then goes idle.
    struct OneShot {
        source: bool,
        heard: bool,
    }

    impl Protocol for OneShot {
        type Msg = ();
        fn act(&mut self, _ctx: &mut NodeCtx<'_>) -> Action<()> {
            if self.source {
                Action::Transmit(())
            } else if self.heard {
                Action::Idle
            } else {
                Action::Listen
            }
        }
        fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &()) {
            self.heard = true;
        }
        fn is_done(&self) -> bool {
            self.heard || self.source
        }
    }

    #[test]
    fn phase_completes_early() {
        let g = generators::star(6);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states: Vec<OneShot> =
            g.nodes().map(|v| OneShot { source: v.index() == 0, heard: false }).collect();
        let rep = sim.run_phase(&mut states, 100);
        assert!(rep.completed);
        assert_eq!(rep.steps, 1);
        assert_eq!(sim.clock(), 1);
    }

    #[test]
    fn idle_nodes_do_not_hear() {
        let g = generators::star(3);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states: Vec<OneShot> =
            g.nodes().map(|v| OneShot { source: v.index() == 0, heard: false }).collect();
        // First step: leaves hear, become idle/done. Run again: no deliveries.
        sim.run_phase(&mut states, 1);
        let rep2 = sim.run_phase(&mut states, 1);
        assert!(rep2.completed);
        assert_eq!(rep2.deliveries, 0);
    }

    #[test]
    fn charge_advances_clock_only() {
        let g = generators::path(4);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        sim.charge(1000);
        assert_eq!(sim.clock(), 1000);
        assert_eq!(sim.stats().charged_steps, 1000);
        assert_eq!(sim.stats().simulated_steps, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        // A protocol that transmits with probability 1/2 per step.
        struct Coin {
            sent: Vec<bool>,
        }
        impl Protocol for Coin {
            type Msg = ();
            fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<()> {
                let t = ctx.rng.gen_bool(0.5);
                self.sent.push(t);
                if t {
                    Action::Transmit(())
                } else {
                    Action::Listen
                }
            }
            fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &()) {}
        }
        let g = generators::cycle(8);
        let run = |seed| {
            let mut sim = Sim::new(&g, NetInfo::exact(&g), seed);
            let mut states: Vec<Coin> = g.nodes().map(|_| Coin { sent: Vec::new() }).collect();
            sim.run_phase(&mut states, 50);
            states.into_iter().map(|c| c.sent).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "one protocol state per node")]
    fn wrong_state_count_panics() {
        let g = generators::path(4);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states = chatters(&g, &[]);
        states.pop();
        sim.run_phase(&mut states, 1);
    }

    /// Records both messages and collision notifications.
    struct CdChatter {
        active: bool,
        heard: usize,
        collisions: usize,
    }

    impl Protocol for CdChatter {
        type Msg = ();
        fn act(&mut self, _ctx: &mut NodeCtx<'_>) -> Action<()> {
            if self.active {
                Action::Transmit(())
            } else {
                Action::Listen
            }
        }
        fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &()) {
            self.heard += 1;
        }
        fn on_collision(&mut self, _ctx: &mut NodeCtx<'_>) {
            self.collisions += 1;
        }
    }

    #[test]
    fn collision_detection_notifies() {
        // Path 1 - 0 - 2: both leaves transmit; with CD the center is told
        // about the collision, without CD it hears nothing at all.
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let mk = |g: &Graph| -> Vec<CdChatter> {
            g.nodes()
                .map(|v| CdChatter { active: v.index() != 0, heard: 0, collisions: 0 })
                .collect()
        };
        let info = NetInfo::exact(&g);
        let mut sim = Sim::with_reception(&g, info, 0, crate::ReceptionMode::ProtocolCd);
        let mut states = mk(&g);
        sim.run_phase(&mut states, 2);
        assert_eq!(states[0].collisions, 2);
        assert_eq!(states[0].heard, 0);

        let mut sim = Sim::new(&g, info, 0);
        let mut states = mk(&g);
        sim.run_phase(&mut states, 2);
        assert_eq!(states[0].collisions, 0, "default model must never notify");
    }

    #[test]
    fn sinr_capture_effect() {
        // Listener 0 at origin; transmitter 1 very close, transmitter 2 far.
        // Protocol model: collision (both are neighbors). SINR: node 1's
        // signal dominates and is decoded — the capture effect the protocol
        // model abstracts away (paper, footnote 1).
        let g = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]).unwrap();
        let positions = vec![(0.0, 0.0), (0.1, 0.0), (0.9, 0.0)];
        let info = NetInfo::exact(&g);
        let mode = crate::ReceptionMode::Sinr(crate::SinrConfig::for_unit_range(positions, 1.0));
        let mut sim = Sim::with_reception(&g, info, 0, mode);
        let mut states: Vec<Chatter> =
            g.nodes().map(|v| Chatter { active: v.index() != 0, heard: Vec::new() }).collect();
        let rep = sim.run_phase(&mut states, 1);
        assert_eq!(rep.deliveries, 1);
        assert_eq!(states[0].heard, vec![7]);

        // Same setup under the protocol model: nothing gets through.
        let mut sim = Sim::new(&g, info, 0);
        let mut states: Vec<Chatter> =
            g.nodes().map(|v| Chatter { active: v.index() != 0, heard: Vec::new() }).collect();
        let rep = sim.run_phase(&mut states, 1);
        assert_eq!(rep.deliveries, 0);
        assert!(states[0].heard.is_empty());
    }

    #[test]
    fn sinr_far_transmitter_not_heard() {
        // A single transmitter beyond the calibrated range is too weak.
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let positions = vec![(0.0, 0.0), (2.0, 0.0)];
        let info = NetInfo::exact(&g);
        let mode = crate::ReceptionMode::Sinr(crate::SinrConfig::for_unit_range(positions, 1.0));
        let mut sim = Sim::with_reception(&g, info, 0, mode);
        let mut states = vec![
            Chatter { active: false, heard: Vec::new() },
            Chatter { active: true, heard: Vec::new() },
        ];
        let rep = sim.run_phase(&mut states, 1);
        assert_eq!(rep.deliveries, 0);
    }

    #[test]
    #[should_panic(expected = "one position per node")]
    fn sinr_position_count_checked() {
        let g = generators::path(3);
        let mode =
            crate::ReceptionMode::Sinr(crate::SinrConfig::for_unit_range(vec![(0.0, 0.0)], 1.0));
        let _ = Sim::with_reception(&g, NetInfo::exact(&g), 0, mode);
    }
}
