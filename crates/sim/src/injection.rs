//! Traffic injections: out-of-band message arrivals the kernels deliver.
//!
//! A streaming workload hands the engine a precomputed, time-sorted list of
//! [`Injection`]s; [`Sim::run_phase_with_injections`](crate::Sim::run_phase_with_injections)
//! delivers each one to its node — via [`Protocol::on_inject`](crate::Protocol::on_inject) —
//! at the start of its scheduled step, before any node acts. Delivery is
//! identical under every kernel: the dense kernel walks each step anyway,
//! the sparse kernel re-engages the injected node's `act` for that step,
//! and the event kernel treats the next pending arrival as a wake source
//! so a clock jump can never overshoot it. Injections are applied to the
//! protocol state regardless of the node's activity status (a churned-down
//! node still queues the message; it only *acts* on it once reactivated),
//! which keeps the three kernels byte-identical under churn.

/// One scheduled arrival: `msg` enters `node`'s protocol state at the start
/// of phase-local step `at`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Injection<M> {
    /// Phase-local step of the arrival (same basis as
    /// [`NodeCtx::time`](crate::NodeCtx::time)).
    pub at: u64,
    /// The receiving node's index.
    pub node: u32,
    /// The injected message.
    pub msg: M,
}

/// Whether a schedule is sorted by arrival step (ties in any node order) —
/// the precondition [`Sim::run_phase_with_injections`](crate::Sim::run_phase_with_injections)
/// asserts. Plans built by sorting on `(at, node)` satisfy it by
/// construction.
pub fn injections_ordered<M>(injections: &[Injection<M>]) -> bool {
    injections.windows(2).all(|w| w[0].at <= w[1].at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_checked() {
        let ok = [
            Injection { at: 0, node: 3, msg: 1u64 },
            Injection { at: 0, node: 1, msg: 2 },
            Injection { at: 5, node: 0, msg: 3 },
        ];
        assert!(injections_ordered(&ok));
        let bad = [Injection { at: 5, node: 0, msg: 1u64 }, Injection { at: 4, node: 0, msg: 2 }];
        assert!(!injections_ordered(&bad));
        assert!(injections_ordered::<u64>(&[]));
    }
}
