//! Synchronous radio-network simulator (paper, Section 1.1).
//!
//! The model simulated here is exactly the paper's:
//!
//! * time is divided into synchronous **time-steps**;
//! * in each step every node either **transmits** a message or **listens**;
//! * a listening node hears a message **iff exactly one of its neighbors
//!   transmits** in that step; otherwise (zero or ≥ 2 transmitters) it hears
//!   nothing, and it cannot distinguish the two cases (**no collision
//!   detection**);
//! * a transmitting node hears nothing in that step (half-duplex);
//! * all nodes wake up at step 0 (**synchronous wake-up**);
//! * the network is **ad-hoc**: protocols receive only the estimates in
//!   [`NetInfo`], never the topology or their own degree.
//!
//! The engine reads the topology through a pluggable [`TopologyView`]
//! rather than the graph directly; the default [`StaticTopology`] is the
//! paper's model above, while dynamic views (see `radionet-scenario`)
//! relax the static-graph and synchronous-wake-up assumptions — churn,
//! partitions, jamming, staggered wake-up — to measure how the guarantees
//! degrade.
//!
//! Protocols implement [`Protocol`] and are executed in *phases* by
//! [`Sim::run_phase`]; per-node RNGs persist across phases so a whole
//! multi-phase algorithm is a deterministic function of `(graph, seed)`.
//! Two interchangeable step kernels execute a phase (see [`Kernel`]): the
//! sparse active-set kernel (default), whose per-step cost tracks actual
//! radio activity via the [`Wake`] hints protocols return, and the dense
//! reference kernel, which polls every node every step; both produce
//! byte-identical results for contract-honoring protocols.
//! Time multiplexing (used by the paper's `Compete`, Algorithms 1/8/10) is
//! provided by [`multiplex::RoundRobin2`] and [`multiplex::RoundRobin3`].
//!
//! # Example: one transmitter, star topology
//!
//! ```
//! use radionet_graph::generators;
//! use radionet_sim::{Action, NetInfo, NodeCtx, Protocol, Sim};
//!
//! struct Beacon { is_source: bool, heard: bool }
//! impl Protocol for Beacon {
//!     type Msg = u64;
//!     fn act(&mut self, _ctx: &mut NodeCtx<'_>) -> Action<u64> {
//!         if self.is_source { Action::Transmit(42) } else { Action::Listen }
//!     }
//!     fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &u64) {
//!         assert_eq!(*msg, 42);
//!         self.heard = true;
//!     }
//!     fn is_done(&self) -> bool { self.heard || self.is_source }
//! }
//!
//! let g = generators::star(5); // hub 0, leaves 1..4
//! let mut sim = Sim::new(&g, NetInfo::exact(&g), 1);
//! let mut nodes: Vec<Beacon> =
//!     g.nodes().map(|v| Beacon { is_source: v.index() == 0, heard: false }).collect();
//! let report = sim.run_phase(&mut nodes, 4);
//! assert!(report.completed);
//! assert!(nodes.iter().skip(1).all(|b| b.heard));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod cost;
mod engine;
mod injection;
pub mod multiplex;
mod protocol;
mod reception;
mod stats;
pub mod topology;

pub use checkpoint::{Checkpoint, CheckpointError, RngState};
pub use cost::CostModel;
pub use engine::{Kernel, PhaseReport, Sim, SimError};
pub use injection::{injections_ordered, Injection};
// The engine's observability vocabulary, re-exported so `Sim`'s public
// signatures (`J: JournalSink = NullSink`) resolve without a separate
// dependency on the journal crate.
pub use protocol::{Action, NetInfo, NodeCtx, Protocol, Wake};
pub use radionet_journal::{JournalSink, NullSink};
// The engine's telemetry vocabulary, re-exported for the same reason:
// `Sim`'s fourth parameter (`M: Telemetry = NoTelemetry`) and downstream
// `run_*` signatures resolve without a separate telemetry dependency.
pub use radionet_telemetry::{NoTelemetry, Registry, Telemetry};
pub use reception::{
    dist3, FarFieldPolicy, PositionSource, ReceptionMode, SinrConfig, NEAR_FIELD_FRACTION,
};
pub use stats::SimStats;
pub use topology::{StaticTopology, TopologyView};
