//! Time multiplexing of protocols (the paper's "conducted concurrently via
//! time multiplexing", Algorithms 1 + 8 and 9 + 10).
//!
//! [`RoundRobin2`] runs protocol `A` on even steps and `B` on odd steps;
//! [`RoundRobin3`] cycles three ways. Each sub-protocol sees its own local
//! time (`0, 1, 2, …` over the steps it owns), and messages are tagged so a
//! sub-protocol never receives the other's traffic — transmissions of `A`
//! only ever occur on `A`-steps, where every node is running `A`, so the
//! radio semantics within each sub-schedule are exactly those of an
//! unmultiplexed run at half (resp. a third) speed.

use crate::protocol::{Action, NodeCtx, Protocol, Wake};

/// Message wrapper distinguishing the two multiplexed sub-protocols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Either<MA, MB> {
    /// Message of the even-step protocol.
    A(MA),
    /// Message of the odd-step protocol.
    B(MB),
}

/// Runs `A` on even steps and `B` on odd steps of a phase.
#[derive(Clone, Debug)]
pub struct RoundRobin2<A, B> {
    /// Even-step protocol.
    pub a: A,
    /// Odd-step protocol.
    pub b: B,
}

impl<A: Protocol, B: Protocol> Protocol for RoundRobin2<A, B> {
    type Msg = Either<A::Msg, B::Msg>;

    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<Self::Msg> {
        let slot = ctx.time % 2;
        let mut sub = NodeCtx { time: ctx.time / 2, info: ctx.info, rng: ctx.rng };
        match slot {
            0 => match self.a.act(&mut sub) {
                Action::Transmit(m) => Action::Transmit(Either::A(m)),
                Action::Listen => Action::Listen,
                Action::Idle => Action::Idle,
            },
            _ => match self.b.act(&mut sub) {
                Action::Transmit(m) => Action::Transmit(Either::B(m)),
                Action::Listen => Action::Listen,
                Action::Idle => Action::Idle,
            },
        }
    }

    fn on_hear(&mut self, ctx: &mut NodeCtx<'_>, msg: &Self::Msg) {
        let mut sub = NodeCtx { time: ctx.time / 2, info: ctx.info, rng: ctx.rng };
        match (ctx.time % 2, msg) {
            (0, Either::A(m)) => self.a.on_hear(&mut sub, m),
            (1, Either::B(m)) => self.b.on_hear(&mut sub, m),
            // A message of the wrong slot cannot occur (all nodes share the
            // global slot parity); ignore defensively.
            _ => {}
        }
    }

    fn is_done(&self) -> bool {
        self.a.is_done() && self.b.is_done()
    }

    fn next_wake(&self, now: u64) -> Wake {
        // Slot interleaving makes window arithmetic across sub-protocols
        // subtle; only the time-free all-retired case composes safely.
        if matches!(self.a.next_wake(now / 2), Wake::Retire)
            && matches!(self.b.next_wake(now / 2), Wake::Retire)
        {
            Wake::Retire
        } else {
            Wake::Now
        }
    }
}

/// Message wrapper for three-way multiplexing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Either3<MA, MB, MC> {
    /// Message of the slot-0 protocol.
    A(MA),
    /// Message of the slot-1 protocol.
    B(MB),
    /// Message of the slot-2 protocol.
    C(MC),
}

/// Runs `A`, `B`, `C` on steps `≡ 0, 1, 2 (mod 3)` respectively.
#[derive(Clone, Debug)]
pub struct RoundRobin3<A, B, C> {
    /// Slot-0 protocol.
    pub a: A,
    /// Slot-1 protocol.
    pub b: B,
    /// Slot-2 protocol.
    pub c: C,
}

impl<A: Protocol, B: Protocol, C: Protocol> Protocol for RoundRobin3<A, B, C> {
    type Msg = Either3<A::Msg, B::Msg, C::Msg>;

    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<Self::Msg> {
        let slot = ctx.time % 3;
        let mut sub = NodeCtx { time: ctx.time / 3, info: ctx.info, rng: ctx.rng };
        match slot {
            0 => match self.a.act(&mut sub) {
                Action::Transmit(m) => Action::Transmit(Either3::A(m)),
                Action::Listen => Action::Listen,
                Action::Idle => Action::Idle,
            },
            1 => match self.b.act(&mut sub) {
                Action::Transmit(m) => Action::Transmit(Either3::B(m)),
                Action::Listen => Action::Listen,
                Action::Idle => Action::Idle,
            },
            _ => match self.c.act(&mut sub) {
                Action::Transmit(m) => Action::Transmit(Either3::C(m)),
                Action::Listen => Action::Listen,
                Action::Idle => Action::Idle,
            },
        }
    }

    fn on_hear(&mut self, ctx: &mut NodeCtx<'_>, msg: &Self::Msg) {
        let mut sub = NodeCtx { time: ctx.time / 3, info: ctx.info, rng: ctx.rng };
        match (ctx.time % 3, msg) {
            (0, Either3::A(m)) => self.a.on_hear(&mut sub, m),
            (1, Either3::B(m)) => self.b.on_hear(&mut sub, m),
            (2, Either3::C(m)) => self.c.on_hear(&mut sub, m),
            _ => {}
        }
    }

    fn is_done(&self) -> bool {
        self.a.is_done() && self.b.is_done() && self.c.is_done()
    }

    fn next_wake(&self, now: u64) -> Wake {
        if matches!(self.a.next_wake(now / 3), Wake::Retire)
            && matches!(self.b.next_wake(now / 3), Wake::Retire)
            && matches!(self.c.next_wake(now / 3), Wake::Retire)
        {
            Wake::Retire
        } else {
            Wake::Now
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetInfo, Sim};
    use radionet_graph::generators;

    /// Transmits its tag every step; records (local_time, heard_tag).
    struct Tagger {
        tag: u32,
        transmit: bool,
        log: Vec<(u64, u32)>,
    }

    impl Protocol for Tagger {
        type Msg = u32;
        fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u32> {
            if self.transmit {
                Action::Transmit(self.tag + ctx.time as u32 * 100)
            } else {
                Action::Listen
            }
        }
        fn on_hear(&mut self, ctx: &mut NodeCtx<'_>, msg: &u32) {
            self.log.push((ctx.time, *msg));
        }
    }

    #[test]
    fn round_robin2_isolates_and_halves_time() {
        // Star: hub 0 transmits in A; leaf 1 transmits in B.
        let g = generators::star(3);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states: Vec<RoundRobin2<Tagger, Tagger>> = g
            .nodes()
            .map(|v| RoundRobin2 {
                a: Tagger { tag: 1, transmit: v.index() == 0, log: Vec::new() },
                b: Tagger { tag: 2, transmit: v.index() == 1, log: Vec::new() },
            })
            .collect();
        sim.run_phase(&mut states, 6); // 3 A-steps, 3 B-steps
                                       // Leaf 2 heard A's hub message at local times 0, 1, 2 (tags 1, 101, 201).
        assert_eq!(states[2].a.log, vec![(0, 1), (1, 101), (2, 201)]);
        // ... and B's leaf-1 message relayed via hub? No: leaf 1 and leaf 2 are
        // not adjacent in a star; only the hub hears B.
        assert!(states[2].b.log.is_empty());
        assert_eq!(states[0].b.log, vec![(0, 2), (1, 102), (2, 202)]);
        // A's transmitter never hears its own sub-protocol.
        assert!(states[0].a.log.is_empty());
    }

    #[test]
    fn round_robin3_slots() {
        let g = generators::star(4);
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states: Vec<RoundRobin3<Tagger, Tagger, Tagger>> = g
            .nodes()
            .map(|v| RoundRobin3 {
                a: Tagger { tag: 1, transmit: v.index() == 0, log: Vec::new() },
                b: Tagger { tag: 2, transmit: v.index() == 0, log: Vec::new() },
                c: Tagger { tag: 3, transmit: v.index() == 0, log: Vec::new() },
            })
            .collect();
        sim.run_phase(&mut states, 9);
        for state in &states[1..4] {
            assert_eq!(state.a.log.len(), 3);
            assert_eq!(state.b.log.len(), 3);
            assert_eq!(state.c.log.len(), 3);
            assert_eq!(state.a.log[0], (0, 1));
            assert_eq!(state.b.log[0], (0, 2));
            assert_eq!(state.c.log[0], (0, 3));
        }
    }

    /// Done-ness: finishes after hearing k messages.
    struct FinishAfter {
        need: usize,
        got: usize,
        source: bool,
    }

    impl Protocol for FinishAfter {
        type Msg = ();
        fn act(&mut self, _ctx: &mut NodeCtx<'_>) -> Action<()> {
            if self.source {
                Action::Transmit(())
            } else {
                Action::Listen
            }
        }
        fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _m: &()) {
            self.got += 1;
        }
        fn is_done(&self) -> bool {
            self.source || self.got >= self.need
        }
    }

    #[test]
    fn round_robin2_done_requires_both() {
        let g = generators::star(2); // hub 0 - leaf 1
        let mut sim = Sim::new(&g, NetInfo::exact(&g), 0);
        let mut states: Vec<RoundRobin2<FinishAfter, FinishAfter>> = g
            .nodes()
            .map(|v| RoundRobin2 {
                a: FinishAfter { need: 1, got: 0, source: v.index() == 0 },
                b: FinishAfter { need: 3, got: 0, source: v.index() == 0 },
            })
            .collect();
        let rep = sim.run_phase(&mut states, 100);
        assert!(rep.completed);
        // B needs 3 receptions at odd steps: local B-steps 0,1,2 → global step 5
        // (6 steps total).
        assert_eq!(rep.steps, 6);
    }
}
