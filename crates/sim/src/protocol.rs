//! The protocol interface: what a node may do and what it may know.

use radionet_graph::Graph;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// A node's choice in one time-step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action<M> {
    /// Transmit `M` to all neighbors (subject to collision).
    Transmit(M),
    /// Listen; [`Protocol::on_hear`] fires if exactly one neighbor transmits.
    Listen,
    /// Neither transmit nor listen (a halted or removed node).
    ///
    /// Operationally identical to [`Action::Listen`] with the delivery
    /// discarded, but lets the engine skip bookkeeping and makes protocol
    /// state machines clearer.
    Idle,
}

/// What the ad-hoc model lets every node know (paper, Section 1.1): linear
/// upper estimates of `n` and `D`, and a polynomial approximation of the
/// independence number `α`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetInfo {
    /// Upper estimate of the node count (within a constant factor).
    pub n: usize,
    /// Upper estimate of the diameter (within a constant factor).
    pub d: u32,
    /// Polynomial approximation of the independence number.
    pub alpha: f64,
}

impl NetInfo {
    /// Builds exact network information from a graph — the harness's default
    /// (the model allows estimates; exactness is the easiest valid choice).
    ///
    /// Uses the exact diameter and an α bracket whose exact-search budget
    /// shrinks with `n` (large graphs fall back to the greedy/clique-cover
    /// bracket, which the paper's "any polynomial approximation will
    /// suffice" tolerates).
    pub fn exact(g: &Graph) -> Self {
        let d = radionet_graph::traversal::diameter(g);
        let budget = match g.n() {
            0..=64 => 500_000,
            65..=128 => 50_000,
            _ => 2_000,
        };
        let alpha = radionet_graph::independent_set::alpha_bounds(g, budget).estimate();
        NetInfo { n: g.n().max(1), d: d.max(1), alpha: alpha.max(1.0) }
    }

    /// Same as [`NetInfo::exact`] but with `n`, `D`, `α` each inflated by
    /// `slack` (≥ 1.0), for testing robustness to estimate error.
    ///
    /// # Panics
    ///
    /// Panics if `slack < 1.0`.
    pub fn with_slack(g: &Graph, slack: f64) -> Self {
        assert!(slack >= 1.0, "slack must be >= 1");
        let base = Self::exact(g);
        NetInfo {
            n: ((base.n as f64) * slack).ceil() as usize,
            d: ((base.d as f64) * slack).ceil() as u32,
            alpha: base.alpha * slack,
        }
    }

    /// `⌈log₂ n⌉`, the ubiquitous protocol parameter, at least 1.
    pub fn log_n(&self) -> u32 {
        (self.n.max(2) as f64).log2().ceil() as u32
    }

    /// `log₂ D`, at least 1.0 (the paper's `log D` terms).
    pub fn log_d(&self) -> f64 {
        (self.d.max(2) as f64).log2()
    }

    /// `log_D α = ln α / ln D`, clamped to at least 1.0 — the paper's key
    /// quantity (`Θ(log_D α)` fine-cluster radius multiplier).
    pub fn log_d_alpha(&self) -> f64 {
        let ld = (self.d.max(2) as f64).ln();
        (self.alpha.max(2.0).ln() / ld).max(1.0)
    }

    /// `log_D n`, clamped to at least 1.0 (the \[CD21\] analogue).
    pub fn log_d_n(&self) -> f64 {
        let ld = (self.d.max(2) as f64).ln();
        ((self.n.max(2) as f64).ln() / ld).max(1.0)
    }
}

/// Per-step context handed to a [`Protocol`].
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// The protocol-local time-step (0-based within the current phase; under
    /// multiplexing, within this protocol's own sub-schedule).
    pub time: u64,
    /// Network estimates available to every node in the ad-hoc model.
    pub info: &'a NetInfo,
    /// The node's private randomness source.
    pub rng: &'a mut SmallRng,
}

/// A per-node protocol state machine.
///
/// The engine calls [`act`](Protocol::act) once per time-step for every
/// node, resolves collisions, then calls [`on_hear`](Protocol::on_hear) on
/// each listener with exactly one transmitting neighbor. Implementations
/// must not assume anything about node identity beyond what they draw from
/// `ctx.rng` (ad-hoc model).
pub trait Protocol {
    /// Message type carried over the air.
    type Msg: Clone;

    /// Decide this step's action. Called exactly once per step.
    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<Self::Msg>;

    /// Called after `act` in the same step if this node listened and heard a
    /// message (exactly one transmitting neighbor).
    fn on_hear(&mut self, ctx: &mut NodeCtx<'_>, msg: &Self::Msg);

    /// Called instead of [`on_hear`](Protocol::on_hear) when the node
    /// listened into a collision **and the engine runs with collision
    /// detection** ([`ReceptionMode::ProtocolCd`](crate::ReceptionMode));
    /// the paper's default model never invokes it (collisions are
    /// indistinguishable from silence there).
    fn on_collision(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// Whether this node's role in the phase is complete. A phase ends when
    /// every node is done (or the step budget runs out).
    fn is_done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;

    #[test]
    fn netinfo_exact_on_grid() {
        let g = generators::grid2d(4, 4);
        let info = NetInfo::exact(&g);
        assert_eq!(info.n, 16);
        assert_eq!(info.d, 6);
        assert!((info.alpha - 8.0).abs() < 1e-9);
        assert_eq!(info.log_n(), 4);
    }

    #[test]
    fn netinfo_slack_inflates() {
        let g = generators::grid2d(4, 4);
        let a = NetInfo::exact(&g);
        let b = NetInfo::with_slack(&g, 2.0);
        assert_eq!(b.n, 2 * a.n);
        assert_eq!(b.d, 2 * a.d);
        assert!(b.alpha > a.alpha);
    }

    #[test]
    #[should_panic(expected = "slack must be >= 1")]
    fn slack_below_one_rejected() {
        let g = generators::path(4);
        let _ = NetInfo::with_slack(&g, 0.5);
    }

    #[test]
    fn log_quantities_clamped() {
        let info = NetInfo { n: 2, d: 1, alpha: 1.0 };
        assert!(info.log_d_alpha() >= 1.0);
        assert!(info.log_d_n() >= 1.0);
        assert!(info.log_n() >= 1);
    }

    #[test]
    fn log_d_alpha_vs_n_separation() {
        // Grid: alpha = n/2, so log_D α ≈ log_D n. UDG-like small alpha:
        // alpha = D², n = D⁴ → log_D α = 2, log_D n = 4.
        let info = NetInfo { n: 10_000, d: 10, alpha: 100.0 };
        assert!((info.log_d_alpha() - 2.0).abs() < 1e-9);
        assert!((info.log_d_n() - 4.0).abs() < 1e-9);
    }
}
