//! The protocol interface: what a node may do and what it may know.

use radionet_graph::Graph;
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// A scheduling hint: what the engine may assume about a node until it next
/// engages it. Returned by [`Protocol::next_wake`] and consumed by the
/// sparse step kernel (see [`Kernel`](crate::Kernel)); the dense reference
/// kernel ignores hints entirely, which is what makes the two comparable.
///
/// All times are **phase-local steps**, the same basis as [`NodeCtx::time`];
/// [`Wake::NEVER`] (`u64::MAX`) means "not before the phase ends".
///
/// # Contract
///
/// A hint is a *promise about counterfactual `act` calls*: it must describe
/// what the node would have done had the engine kept calling `act` every
/// step, exactly as the dense kernel does. A protocol that breaks a promise
/// (draws randomness, transmits, or observably changes state inside a
/// window it declared passive) diverges between the two kernels; the
/// equivalence proptests exist to catch that. Internal bookkeeping that is
/// never externally observable (a cached `elapsed`, a self-healing slot
/// cursor) may go stale inside a window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wake {
    /// No promise: call `act` again next step. Always correct; the default.
    Now,
    /// Passive listener: at every step `t` with `now < t < wake_at`, `act`
    /// would return [`Action::Listen`] without drawing randomness or
    /// changing observable state. The engine keeps the node in the listener
    /// set without calling it, and re-engages it at `wake_at` — or as soon
    /// as it hears a message or (under collision detection) a collision,
    /// after which a fresh hint supersedes this one.
    Listen {
        /// First step at which `act` must run again ([`Wake::NEVER`] = not
        /// before the phase ends).
        wake_at: u64,
        /// If `Some(d)`: had `act` been called every step, `is_done()`
        /// would return `true` at the end of step `d` and of every later
        /// step. Lets the engine account phase completion without waking
        /// the node.
        done_at: Option<u64>,
    },
    /// Deaf idle: like [`Wake::Listen`], but `act` would return
    /// [`Action::Idle`] — the node hears nothing in the window and can only
    /// be re-engaged by `wake_at` or a topology reactivation.
    Sleep {
        /// First step at which `act` must run again.
        wake_at: u64,
        /// As in [`Wake::Listen`].
        done_at: Option<u64>,
    },
    /// Permanently finished: had `act` been called every step, `is_done()`
    /// would be `true` from the end of the current step on, and every
    /// future `act` would return [`Action::Idle`] with no observable
    /// effects. The engine never engages the node again this phase.
    Retire,
}

impl Wake {
    /// Sentinel wake time: "no wake-up before the phase ends".
    pub const NEVER: u64 = u64::MAX;

    /// Listen passively with no scheduled wake-up (re-engaged by traffic).
    pub const fn listen() -> Self {
        Wake::Listen { wake_at: Wake::NEVER, done_at: None }
    }

    /// Listen passively until `wake_at` (re-engaged earlier by traffic).
    pub const fn listen_until(wake_at: u64) -> Self {
        Wake::Listen { wake_at, done_at: None }
    }

    /// Sleep (deaf and frozen) until `wake_at`.
    pub const fn sleep_until(wake_at: u64) -> Self {
        Wake::Sleep { wake_at, done_at: None }
    }
}

/// A node's choice in one time-step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action<M> {
    /// Transmit `M` to all neighbors (subject to collision).
    Transmit(M),
    /// Listen; [`Protocol::on_hear`] fires if exactly one neighbor transmits.
    Listen,
    /// Neither transmit nor listen (a halted or removed node).
    ///
    /// Operationally identical to [`Action::Listen`] with the delivery
    /// discarded, but lets the engine skip bookkeeping and makes protocol
    /// state machines clearer.
    Idle,
}

/// What the ad-hoc model lets every node know (paper, Section 1.1): linear
/// upper estimates of `n` and `D`, and a polynomial approximation of the
/// independence number `α`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetInfo {
    /// Upper estimate of the node count (within a constant factor).
    pub n: usize,
    /// Upper estimate of the diameter (within a constant factor).
    pub d: u32,
    /// Polynomial approximation of the independence number.
    pub alpha: f64,
}

impl NetInfo {
    /// Above this node count, [`NetInfo::exact`] switches from the exact /
    /// iFUB diameter to the 3-BFS double-sweep bound: exact all-pairs BFS is
    /// `O(n·m)` and even iFUB can degenerate to many sweeps, which would let
    /// *setup* dominate million-node runs whose simulation is otherwise
    /// near-linear. The double sweep is exact on the tree/path/grid families
    /// and always within a factor 2, which the paper's "estimates within a
    /// constant factor" model explicitly tolerates.
    pub const EXACT_DIAMETER_MAX_N: usize = 32_768;

    /// Builds exact network information from a graph — the harness's default
    /// (the model allows estimates; exactness is the easiest valid choice).
    ///
    /// Uses the exact diameter up to [`NetInfo::EXACT_DIAMETER_MAX_N`] nodes
    /// (the 2-sweep BFS bound beyond that) and an α bracket whose
    /// exact-search budget shrinks with `n` (large graphs fall back to the
    /// greedy/clique-cover bracket, which the paper's "any polynomial
    /// approximation will suffice" tolerates).
    pub fn exact(g: &Graph) -> Self {
        let d = if g.n() <= Self::EXACT_DIAMETER_MAX_N {
            radionet_graph::traversal::diameter(g)
        } else {
            radionet_graph::traversal::diameter_double_sweep(g)
        };
        let budget = match g.n() {
            0..=64 => 500_000,
            65..=128 => 50_000,
            _ => 2_000,
        };
        let alpha = radionet_graph::independent_set::alpha_bounds(g, budget).estimate();
        NetInfo { n: g.n().max(1), d: d.max(1), alpha: alpha.max(1.0) }
    }

    /// Same as [`NetInfo::exact`] but with `n`, `D`, `α` each inflated by
    /// `slack` (≥ 1.0), for testing robustness to estimate error.
    ///
    /// # Panics
    ///
    /// Panics if `slack < 1.0`.
    pub fn with_slack(g: &Graph, slack: f64) -> Self {
        assert!(slack >= 1.0, "slack must be >= 1");
        let base = Self::exact(g);
        NetInfo {
            n: ((base.n as f64) * slack).ceil() as usize,
            d: ((base.d as f64) * slack).ceil() as u32,
            alpha: base.alpha * slack,
        }
    }

    /// `⌈log₂ n⌉`, the ubiquitous protocol parameter, at least 1.
    pub fn log_n(&self) -> u32 {
        (self.n.max(2) as f64).log2().ceil() as u32
    }

    /// `log₂ D`, at least 1.0 (the paper's `log D` terms).
    pub fn log_d(&self) -> f64 {
        (self.d.max(2) as f64).log2()
    }

    /// `log_D α = ln α / ln D`, clamped to at least 1.0 — the paper's key
    /// quantity (`Θ(log_D α)` fine-cluster radius multiplier).
    pub fn log_d_alpha(&self) -> f64 {
        let ld = (self.d.max(2) as f64).ln();
        (self.alpha.max(2.0).ln() / ld).max(1.0)
    }

    /// `log_D n`, clamped to at least 1.0 (the \[CD21\] analogue).
    pub fn log_d_n(&self) -> f64 {
        let ld = (self.d.max(2) as f64).ln();
        ((self.n.max(2) as f64).ln() / ld).max(1.0)
    }
}

/// Per-step context handed to a [`Protocol`].
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// The protocol-local time-step (0-based within the current phase; under
    /// multiplexing, within this protocol's own sub-schedule).
    pub time: u64,
    /// Network estimates available to every node in the ad-hoc model.
    pub info: &'a NetInfo,
    /// The node's private randomness source.
    pub rng: &'a mut SmallRng,
}

/// A per-node protocol state machine.
///
/// The engine calls [`act`](Protocol::act) once per time-step for every
/// node, resolves collisions, then calls [`on_hear`](Protocol::on_hear) on
/// each listener with exactly one transmitting neighbor. Implementations
/// must not assume anything about node identity beyond what they draw from
/// `ctx.rng` (ad-hoc model).
///
/// # Scheduling hints and the sparse kernel (migration note)
///
/// Under the sparse step kernel (the default, see
/// [`Kernel`](crate::Kernel)), the engine additionally calls
/// [`next_wake`](Protocol::next_wake) after every `act` / `on_hear` /
/// `on_collision`, and **skips** `act` calls inside the window the hint
/// declares passive. Downstream protocol authors migrating to the new
/// contract should observe:
///
/// * The default `Wake::Now` is always correct — an unmigrated protocol
///   runs bit-identically, it just never gets skipped.
/// * A non-`Now` hint is a promise about what `act` *would have* returned
///   had it been called every step (see [`Wake`]). Inside a declared
///   window, `act` must not draw from `ctx.rng`, must not transmit, and
///   must not observably change state — which in practice means time-driven
///   protocols should derive their position from [`NodeCtx::time`] rather
///   than from an every-call counter.
/// * [`is_done`](Protocol::is_done) must be **monotone within a phase**:
///   once true it stays true. Both kernels rely on this for completion
///   accounting.
/// * Hearing a message (or, with collision detection, a collision) always
///   re-engages a passive listener: `act` resumes the following step and a
///   fresh hint is taken, so "listen until something happens" is expressed
///   as [`Wake::listen`].
/// * Under [`Kernel::Event`](crate::Kernel), declared-passive windows are
///   not merely skipped per node — when *every* node is passive the clock
///   jumps over the whole silent span without executing its steps at all.
///   A correct hint under the sparse kernel is automatically correct here,
///   but the stakes are stated more sharply: the promise must hold at
///   **every** step of the window, because the engine may next evaluate the
///   node's surroundings at an arbitrary jumped-to time inside it, not at
///   `now + 1`.
pub trait Protocol {
    /// Message type carried over the air.
    type Msg: Clone;

    /// Decide this step's action. Called exactly once per step.
    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<Self::Msg>;

    /// Called after `act` in the same step if this node listened and heard a
    /// message (exactly one transmitting neighbor).
    fn on_hear(&mut self, ctx: &mut NodeCtx<'_>, msg: &Self::Msg);

    /// Called instead of [`on_hear`](Protocol::on_hear) when the node
    /// listened into a collision **and the engine runs with collision
    /// detection** ([`ReceptionMode::ProtocolCd`](crate::ReceptionMode));
    /// the paper's default model never invokes it (collisions are
    /// indistinguishable from silence there).
    fn on_collision(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// Out-of-band arrival of a locally originated message (a traffic
    /// injection, see [`Injection`](crate::Injection)): the application
    /// layer hands `msg` to this node's outbound queue at the start of the
    /// step, *before* any node acts. Every kernel delivers injections at
    /// exactly their scheduled step — the sparse and event kernels treat a
    /// pending arrival as a wake source and re-engage the node — so an
    /// injection supersedes any passive window the node promised, and the
    /// fresh hint taken after the same step's `act` covers what follows.
    /// The default ignores the message (protocols that never carry traffic
    /// need no queue).
    fn on_inject(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &Self::Msg) {}

    /// Whether this node's role in the phase is complete. A phase ends when
    /// every node is done (or the step budget runs out). Must be monotone
    /// within a phase: once `true`, it stays `true`.
    fn is_done(&self) -> bool {
        false
    }

    /// Scheduling hint for the sparse and event kernels, queried right
    /// after this node's `act`, `on_hear` or `on_collision` at phase-local
    /// step `now`. The returned promise covers steps after `now` and is
    /// superseded by the next engagement. See [`Wake`] for the exact
    /// semantics; the default makes no promise.
    ///
    /// The promise is **counterfactual and span-wide**: it states what
    /// `act` would have returned at *each* step of the declared window,
    /// not only at `now + 1`. The sparse kernel exploits it step by step;
    /// the event kernel ([`Kernel::Event`](crate::Kernel)) goes further
    /// and jumps the clock to the earliest wake deadline when every node
    /// is passive, so the hint must remain valid at whichever in-window
    /// time the engine lands on. Deriving behavior from
    /// [`NodeCtx::time`] (never from a per-call counter) keeps both
    /// kernels bit-identical to the dense reference.
    fn next_wake(&self, now: u64) -> Wake {
        let _ = now;
        Wake::Now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radionet_graph::generators;

    #[test]
    fn netinfo_exact_on_grid() {
        let g = generators::grid2d(4, 4);
        let info = NetInfo::exact(&g);
        assert_eq!(info.n, 16);
        assert_eq!(info.d, 6);
        assert!((info.alpha - 8.0).abs() < 1e-9);
        assert_eq!(info.log_n(), 4);
    }

    #[test]
    fn netinfo_slack_inflates() {
        let g = generators::grid2d(4, 4);
        let a = NetInfo::exact(&g);
        let b = NetInfo::with_slack(&g, 2.0);
        assert_eq!(b.n, 2 * a.n);
        assert_eq!(b.d, 2 * a.d);
        assert!(b.alpha > a.alpha);
    }

    #[test]
    #[should_panic(expected = "slack must be >= 1")]
    fn slack_below_one_rejected() {
        let g = generators::path(4);
        let _ = NetInfo::with_slack(&g, 0.5);
    }

    #[test]
    fn log_quantities_clamped() {
        let info = NetInfo { n: 2, d: 1, alpha: 1.0 };
        assert!(info.log_d_alpha() >= 1.0);
        assert!(info.log_d_n() >= 1.0);
        assert!(info.log_n() >= 1);
    }

    #[test]
    fn log_d_alpha_vs_n_separation() {
        // Grid: alpha = n/2, so log_D α ≈ log_D n. UDG-like small alpha:
        // alpha = D², n = D⁴ → log_D α = 2, log_D n = 4.
        let info = NetInfo { n: 10_000, d: 10, alpha: 100.0 };
        assert!((info.log_d_alpha() - 2.0).abs() < 1e-9);
        assert!((info.log_d_n() - 4.0).abs() < 1e-9);
    }
}
