//! Alternative reception models.
//!
//! The paper works in the classic *protocol model* (a listener hears a
//! message iff exactly one neighbor transmits, no collision detection) and
//! explicitly notes the alternatives it abstracts away: collision detection
//! (its related work, e.g. Schneider–Wattenhofer \[29\] and Dessmark–Pelc
//! \[12\], *requires* it) and the physical **SINR** model (footnote 1, citing
//! Daum et al. \[10\]). This module makes the reception rule pluggable so the
//! harness can quantify what the abstraction costs (experiment E13):
//!
//! * [`ReceptionMode::Protocol`] — the paper's model (default);
//! * [`ReceptionMode::ProtocolCd`] — same topology, but a listener can
//!   distinguish *collision* (≥ 2 transmitting neighbors) from *silence*;
//!   delivered via [`Protocol::on_collision`](crate::Protocol::on_collision);
//! * [`ReceptionMode::Sinr`] — geometric reception: a listener hears the
//!   strongest transmitter `u` iff
//!   `P·d(u,v)^{-α} / (N + Σ_{w≠u} P·d(w,v)^{-α}) ≥ β`, independent of the
//!   graph (the graph still defines who *intends* to talk to whom; SINR
//!   decides who is *heard*, including capture from non-neighbors).
//!
//! # Position sourcing
//!
//! SINR reception is purely positional, so the one thing it needs is a
//! point per node. [`PositionSource`] names where those points come from:
//! a hand-shipped [`Snapshot`](PositionSource::Snapshot), the generating
//! family's own embedding ([`Geometry`](PositionSource::Geometry), resolved
//! by the API driver), or the **live** moving point set of a mobile
//! topology ([`Live`](PositionSource::Live), re-read from the
//! [`TopologyView`](crate::TopologyView) every step). Points are `[x, y, z]`
//! uniformly — 2D deployments carry `z = 0` — matching the geometry layer.
//!
//! # Near-field model
//!
//! Free-space path loss `d^{-α}` diverges at `d → 0`; physically, received
//! power saturates once the receiver enters the antenna near field. The
//! model clamps the effective distance at [`SinrConfig::near_field_floor`]
//! — [`NEAR_FIELD_FRACTION`] of the calibrated decode range — so the
//! near-field gain cap is *scale-invariant*: co-located distinct nodes see
//! a bounded `β·(1/NEAR_FIELD_FRACTION)^α` multiple of the noise floor
//! regardless of whether ranges are meters or kilometers (an absolute
//! clamp would make the cap blow up with the deployment scale).
//!
//! # Far-field policy
//!
//! The sparse step kernel resolves SINR reception through a spatial index
//! (see [`Kernel`](crate::Kernel)); [`FarFieldPolicy`] controls how it
//! treats far transmitters when summing interference. The default
//! [`Exact`](FarFieldPolicy::Exact) uses the index only to find candidate
//! *strongest* transmitters — interference stays an exact sum over all
//! transmitters, and reports are bit-identical to the dense reference.
//! [`Cutoff`](FarFieldPolicy::Cutoff) additionally truncates the
//! interference sum at the distance where **total** omitted interference
//! is provably at most `eps · noise`, trading a one-sided ≤ `eps·noise`
//! under-estimate of the denominator for locality at scale.

use serde::{Deserialize, Serialize};

// The shared `[x, y, z]` distance lives beside the spatial index in the
// geometry layer; re-exported here so reception consumers need no direct
// `radionet_graph` import.
pub use radionet_graph::spatial::dist3;

/// Where SINR reception reads node positions from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PositionSource {
    /// An explicit owned snapshot: node `i` sits at `positions[i]`
    /// (`[x, y, z]`; 2D deployments set `z = 0`). The only source that
    /// hand-ships coordinates.
    Snapshot(Vec<[f64; 3]>),
    /// Resolve from the generating family's own embedding
    /// ([`Family::instantiate_positioned`]): the API driver replaces this
    /// with a [`Snapshot`](PositionSource::Snapshot) of the generated
    /// point set (static runs) or with [`Live`](PositionSource::Live)
    /// (mobility runs). The engine itself rejects an unresolved
    /// `Geometry` — it has no access to families.
    ///
    /// [`Family::instantiate_positioned`]:
    /// https://docs.rs/radionet-graph (families module)
    Geometry,
    /// Re-read from the topology view each step
    /// ([`TopologyView::positions`](crate::TopologyView::positions)) —
    /// the moving point set of a mobile topology. Requires a view that
    /// actually carries positions.
    Live,
}

impl PositionSource {
    /// An owned snapshot from 2D points (`z = 0`).
    pub fn snapshot_2d(points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        PositionSource::Snapshot(points.into_iter().map(|(x, y)| [x, y, 0.0]).collect())
    }
}

impl From<Vec<[f64; 3]>> for PositionSource {
    fn from(points: Vec<[f64; 3]>) -> Self {
        PositionSource::Snapshot(points)
    }
}

impl From<Vec<(f64, f64)>> for PositionSource {
    fn from(points: Vec<(f64, f64)>) -> Self {
        PositionSource::snapshot_2d(points)
    }
}

/// How the sparse kernel treats far transmitters when summing SINR
/// interference. The dense reference kernel always computes the exact sum
/// (it has no index to truncate with); under `Exact` the two kernels are
/// bit-identical, under `Cutoff` the sparse kernel's denominator is
/// under-estimated by at most `eps · noise` (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum FarFieldPolicy {
    /// Interference is the exact sum over **all** transmitters; the
    /// spatial index only accelerates the strongest-transmitter search.
    /// Identical reports to the dense reference kernel.
    #[default]
    Exact,
    /// Truncate the interference sum at the distance where each of the
    /// `T` transmitters beyond it contributes at most `eps·noise / T`
    /// received power, so the **total** omitted interference is at most
    /// `eps · noise`. One-sided: computed SINR ≥ true SINR, so a
    /// borderline listener may decode where `Exact` would count a
    /// collision; with `eps ≪ β − best/(N+I)` margins the reports
    /// coincide (pinned by tolerance tests).
    Cutoff(f64),
}

/// Parameters of the SINR reception rule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SinrConfig {
    /// Where node positions come from (see the module docs).
    pub positions: PositionSource,
    /// Path-loss exponent `α` (free space 2, urban 3–4).
    pub path_loss: f64,
    /// SINR threshold `β ≥ 1` for successful decoding.
    pub threshold: f64,
    /// Ambient noise power `N > 0`.
    pub noise: f64,
    /// Uniform transmit power `P`.
    pub power: f64,
    /// Far-transmitter treatment in the sparse kernel (default
    /// [`FarFieldPolicy::Exact`]).
    pub far_field: FarFieldPolicy,
}

/// Effective-distance floor as a fraction of the calibrated decode range
/// (the near-field model; see the module docs). With the default `β = 2`,
/// `α = 3` calibration this caps the co-located gain at `2·10⁹ ×` the
/// noise floor — huge, but bounded and independent of the deployment
/// scale.
pub const NEAR_FIELD_FRACTION: f64 = 1e-3;

impl SinrConfig {
    /// A standard configuration for unit-disk-scale deployments: path loss
    /// `α = 3`, threshold `β = 2`, and noise calibrated so that an isolated
    /// transmitter is decodable up to distance ≈ `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not strictly positive.
    pub fn for_unit_range(positions: impl Into<PositionSource>, range: f64) -> Self {
        assert!(range > 0.0, "range must be positive");
        let path_loss = 3.0;
        let threshold = 2.0;
        let power = 1.0;
        // Decodable alone at `range`: P·range^{-α} / N = β.
        let noise = power * range.powf(-path_loss) / threshold;
        SinrConfig {
            positions: positions.into(),
            path_loss,
            threshold,
            noise,
            power,
            far_field: FarFieldPolicy::default(),
        }
    }

    /// The geometry-sourced standard configuration: positions come from
    /// the generating family's embedding, calibrated to unit interaction
    /// range (the radius of every geometric family is `O(1)`; unit disk
    /// and unit ball use exactly `1.0`). This is what `--reception sinr`
    /// and the SINR scenario cells use — no coordinates are hand-shipped.
    pub fn geometric() -> Self {
        Self::for_unit_range(PositionSource::Geometry, 1.0)
    }

    /// Selects the far-field policy (builder style).
    pub fn with_far_field(mut self, far_field: FarFieldPolicy) -> Self {
        self.far_field = far_field;
        self
    }

    /// Structural validation: all physical parameters must be finite and
    /// strictly positive (and a `Cutoff` epsilon likewise), otherwise the
    /// decode range — and with it the reception rule — is undefined.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("path_loss", self.path_loss),
            ("threshold", self.threshold),
            ("noise", self.noise),
            ("power", self.power),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("SINR {name} must be finite and positive, got {v}"));
            }
        }
        if let FarFieldPolicy::Cutoff(eps) = self.far_field {
            if !(eps.is_finite() && eps > 0.0) {
                return Err(format!("SINR cutoff epsilon must be finite and positive, got {eps}"));
            }
        }
        if let PositionSource::Snapshot(points) = &self.positions {
            if points.iter().any(|p| p.iter().any(|c| !c.is_finite())) {
                return Err("SINR position snapshot contains a non-finite coordinate".into());
            }
        }
        Ok(())
    }

    /// The calibrated decode range: the largest distance at which an
    /// isolated transmitter still clears the threshold,
    /// `(P / (N·β))^{1/α}`. For [`SinrConfig::for_unit_range`] this is
    /// exactly the `range` argument. It is also the spatial-index cell
    /// width of the sparse kernel: any transmitter decodable by some
    /// listener sits within one cell ring of it.
    pub fn decode_range(&self) -> f64 {
        (self.power / (self.noise * self.threshold)).powf(1.0 / self.path_loss)
    }

    /// The near-field effective-distance floor:
    /// [`NEAR_FIELD_FRACTION`]` × `[`decode_range`](SinrConfig::decode_range).
    pub fn near_field_floor(&self) -> f64 {
        NEAR_FIELD_FRACTION * self.decode_range()
    }

    /// Received power at distance `d` under the near-field model (the
    /// effective distance is clamped below at the scale-relative
    /// [`near_field_floor`](SinrConfig::near_field_floor), never at an
    /// absolute constant).
    pub fn gain(&self, d: f64) -> f64 {
        self.gain_clamped(d, self.near_field_floor())
    }

    /// [`gain`](SinrConfig::gain) with a precomputed floor — the hot-loop
    /// form (the floor involves a `powf` better hoisted out of per-pair
    /// work).
    #[inline]
    pub fn gain_clamped(&self, d: f64, floor: f64) -> f64 {
        self.power * d.max(floor).powf(-self.path_loss)
    }

    /// The far-field cutoff distance for `Cutoff(eps)` with `tx_count`
    /// transmitters on the air: beyond it each transmitter contributes at
    /// most `eps·noise / tx_count`, so the total omitted interference is
    /// at most `eps·noise`. Never below the decode range (the decodable
    /// signal itself is always inside the sum).
    pub fn cutoff_distance(&self, eps: f64, tx_count: usize) -> f64 {
        let d = (self.power * tx_count as f64 / (eps * self.noise)).powf(1.0 / self.path_loss);
        d.max(self.decode_range())
    }
}

/// The reception rule the engine applies each time-step.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub enum ReceptionMode {
    /// The paper's model (Section 1.1).
    #[default]
    Protocol,
    /// Protocol model with collision detection.
    ProtocolCd,
    /// Physical SINR reception (paper, footnote 1).
    Sinr(SinrConfig),
}

impl ReceptionMode {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReceptionMode::Protocol => "protocol",
            ReceptionMode::ProtocolCd => "protocol+cd",
            ReceptionMode::Sinr(_) => "sinr",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_range_calibration() {
        let cfg = SinrConfig::for_unit_range(vec![(0.0, 0.0), (1.0, 0.0)], 1.0);
        // A lone transmitter at exactly distance 1 sits exactly at threshold.
        let sinr = cfg.gain(1.0) / cfg.noise;
        assert!((sinr - cfg.threshold).abs() < 1e-9);
        // Closer is decodable, farther is not.
        assert!(cfg.gain(0.5) / cfg.noise > cfg.threshold);
        assert!(cfg.gain(1.5) / cfg.noise < cfg.threshold);
        // The decode range recovers the calibration argument.
        assert!((cfg.decode_range() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gain_monotone() {
        let cfg = SinrConfig::for_unit_range(PositionSource::Snapshot(Vec::new()), 1.0);
        assert!(cfg.gain(0.1) > cfg.gain(0.2));
        assert!(cfg.gain(2.0) > cfg.gain(4.0));
    }

    #[test]
    fn near_field_clamp_is_scale_relative() {
        // Regression for the absolute 1e-6 clamp: co-located nodes must
        // see the *same* bounded gain-to-noise ratio at every deployment
        // scale, not a scale-dependent ~1e18 blowup.
        let small = SinrConfig::for_unit_range(PositionSource::Snapshot(Vec::new()), 1.0);
        let large = SinrConfig::for_unit_range(PositionSource::Snapshot(Vec::new()), 1000.0);
        let ratio_small = small.gain(0.0) / small.noise;
        let ratio_large = large.gain(0.0) / large.noise;
        assert!(
            (ratio_small / ratio_large - 1.0).abs() < 1e-9,
            "near-field cap must be scale-invariant: {ratio_small} vs {ratio_large}"
        );
        // The cap equals β·(1/NEAR_FIELD_FRACTION)^α exactly.
        let expected = small.threshold * NEAR_FIELD_FRACTION.powf(-small.path_loss);
        assert!((ratio_small / expected - 1.0).abs() < 1e-9);
        // And the floor saturates: below it, distance no longer matters.
        let floor = small.near_field_floor();
        assert_eq!(small.gain(0.0), small.gain(floor));
        assert_eq!(small.gain(floor / 2.0), small.gain(floor));
        assert!(small.gain(floor * 2.0) < small.gain(floor));
    }

    #[test]
    fn cutoff_distance_bounds_omitted_interference() {
        let cfg = SinrConfig::for_unit_range(PositionSource::Snapshot(Vec::new()), 1.0);
        for (eps, t) in [(0.5, 10usize), (0.01, 1000), (1.0, 1)] {
            let d = cfg.cutoff_distance(eps, t);
            assert!(d >= cfg.decode_range(), "cutoff below decode range");
            // A transmitter exactly at the cutoff contributes ≤ eps·noise/T.
            assert!(cfg.gain(d) <= eps * cfg.noise / t as f64 * (1.0 + 1e-12));
        }
    }

    #[test]
    fn validate_catches_degenerate_parameters() {
        let good = SinrConfig::geometric();
        assert!(good.validate().is_ok());
        let mut bad = good.clone();
        bad.noise = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.path_loss = f64::NAN;
        assert!(bad.validate().is_err());
        let bad = good.clone().with_far_field(FarFieldPolicy::Cutoff(-1.0));
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.positions = PositionSource::Snapshot(vec![[0.0, f64::INFINITY, 0.0]]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn position_source_conversions() {
        let from_2d: PositionSource = vec![(1.0, 2.0)].into();
        assert_eq!(from_2d, PositionSource::Snapshot(vec![[1.0, 2.0, 0.0]]));
        let from_3d: PositionSource = vec![[1.0, 2.0, 3.0]].into();
        assert_eq!(from_3d, PositionSource::Snapshot(vec![[1.0, 2.0, 3.0]]));
    }

    #[test]
    fn dist3_covers_both_dimensions() {
        assert!((dist3(&[0.0, 0.0, 0.0], &[3.0, 4.0, 0.0]) - 5.0).abs() < 1e-12);
        assert!((dist3(&[0.0, 0.0, 0.0], &[1.0, 2.0, 2.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn names() {
        assert_eq!(ReceptionMode::Protocol.name(), "protocol");
        assert_eq!(ReceptionMode::ProtocolCd.name(), "protocol+cd");
        assert_eq!(ReceptionMode::Sinr(SinrConfig::geometric()).name(), "sinr");
    }

    #[test]
    fn default_is_protocol() {
        assert_eq!(ReceptionMode::default(), ReceptionMode::Protocol);
    }

    #[test]
    fn serde_round_trips_every_source_and_policy() {
        let configs = [
            SinrConfig::for_unit_range(vec![(0.0, 0.0), (0.5, 0.25)], 1.0),
            SinrConfig::geometric(),
            SinrConfig::for_unit_range(PositionSource::Live, 2.0)
                .with_far_field(FarFieldPolicy::Cutoff(0.125)),
        ];
        for cfg in configs {
            let mode = ReceptionMode::Sinr(cfg);
            let json = serde_json::to_string(&mode).unwrap();
            let back: ReceptionMode = serde_json::from_str(&json).unwrap();
            assert_eq!(back, mode);
        }
    }
}
