//! Alternative reception models.
//!
//! The paper works in the classic *protocol model* (a listener hears a
//! message iff exactly one neighbor transmits, no collision detection) and
//! explicitly notes the alternatives it abstracts away: collision detection
//! (its related work, e.g. Schneider–Wattenhofer \[29\] and Dessmark–Pelc
//! \[12\], *requires* it) and the physical **SINR** model (footnote 1, citing
//! Daum et al. \[10\]). This module makes the reception rule pluggable so the
//! harness can quantify what the abstraction costs (experiment E13):
//!
//! * [`ReceptionMode::Protocol`] — the paper's model (default);
//! * [`ReceptionMode::ProtocolCd`] — same topology, but a listener can
//!   distinguish *collision* (≥ 2 transmitting neighbors) from *silence*;
//!   delivered via [`Protocol::on_collision`](crate::Protocol::on_collision);
//! * [`ReceptionMode::Sinr`] — geometric reception: a listener hears the
//!   strongest transmitter `u` iff
//!   `P·d(u,v)^{-α} / (N + Σ_{w≠u} P·d(w,v)^{-α}) ≥ β`, independent of the
//!   graph (the graph still defines who *intends* to talk to whom; SINR
//!   decides who is *heard*, including capture from non-neighbors).

use serde::{Deserialize, Serialize};

/// Parameters of the SINR reception rule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SinrConfig {
    /// Node positions (one per node, in the plane).
    pub positions: Vec<(f64, f64)>,
    /// Path-loss exponent `α` (free space 2, urban 3–4).
    pub path_loss: f64,
    /// SINR threshold `β ≥ 1` for successful decoding.
    pub threshold: f64,
    /// Ambient noise power `N > 0`.
    pub noise: f64,
    /// Uniform transmit power `P`.
    pub power: f64,
}

impl SinrConfig {
    /// A standard configuration for unit-disk-scale deployments: path loss
    /// `α = 3`, threshold `β = 2`, and noise calibrated so that an isolated
    /// transmitter is decodable up to distance ≈ `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not strictly positive.
    pub fn for_unit_range(positions: Vec<(f64, f64)>, range: f64) -> Self {
        assert!(range > 0.0, "range must be positive");
        let path_loss = 3.0;
        let threshold = 2.0;
        let power = 1.0;
        // Decodable alone at `range`: P·range^{-α} / N = β.
        let noise = power * range.powf(-path_loss) / threshold;
        SinrConfig { positions, path_loss, threshold, noise, power }
    }

    /// Received power at distance `d` (clamped below to avoid the
    /// singularity at 0).
    pub fn gain(&self, d: f64) -> f64 {
        self.power * d.max(1e-6).powf(-self.path_loss)
    }

    /// Euclidean distance between nodes `i` and `j`.
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        let (xi, yi) = self.positions[i];
        let (xj, yj) = self.positions[j];
        (xi - xj).hypot(yi - yj)
    }
}

/// The reception rule the engine applies each time-step.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub enum ReceptionMode {
    /// The paper's protocol model (Section 1.1).
    #[default]
    Protocol,
    /// Protocol model with collision detection.
    ProtocolCd,
    /// Physical SINR reception (paper, footnote 1).
    Sinr(SinrConfig),
}

impl ReceptionMode {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReceptionMode::Protocol => "protocol",
            ReceptionMode::ProtocolCd => "protocol+cd",
            ReceptionMode::Sinr(_) => "sinr",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_range_calibration() {
        let cfg = SinrConfig::for_unit_range(vec![(0.0, 0.0), (1.0, 0.0)], 1.0);
        // A lone transmitter at exactly distance 1 sits exactly at threshold.
        let sinr = cfg.gain(1.0) / cfg.noise;
        assert!((sinr - cfg.threshold).abs() < 1e-9);
        // Closer is decodable, farther is not.
        assert!(cfg.gain(0.5) / cfg.noise > cfg.threshold);
        assert!(cfg.gain(1.5) / cfg.noise < cfg.threshold);
    }

    #[test]
    fn gain_monotone() {
        let cfg = SinrConfig::for_unit_range(vec![], 1.0);
        assert!(cfg.gain(0.1) > cfg.gain(0.2));
        assert!(cfg.gain(2.0) > cfg.gain(4.0));
    }

    #[test]
    fn names() {
        assert_eq!(ReceptionMode::Protocol.name(), "protocol");
        assert_eq!(ReceptionMode::ProtocolCd.name(), "protocol+cd");
        assert_eq!(ReceptionMode::Sinr(SinrConfig::for_unit_range(vec![], 1.0)).name(), "sinr");
    }

    #[test]
    fn default_is_protocol() {
        assert_eq!(ReceptionMode::default(), ReceptionMode::Protocol);
    }
}
