//! Cumulative simulation statistics.

use crate::engine::PhaseReport;
use serde::{Deserialize, Serialize};

/// Statistics accumulated by a [`Sim`](crate::Sim) across all phases.
///
/// `simulated_steps` count real collision-resolved steps; `charged_steps`
/// are oracle costs added with [`Sim::charge`](crate::Sim::charge) (DESIGN.md
/// substitution S1). Experiments report the two separately.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Real simulated time-steps.
    pub simulated_steps: u64,
    /// Oracle-charged time-steps.
    pub charged_steps: u64,
    /// Total transmissions.
    pub transmissions: u64,
    /// Successful deliveries.
    pub deliveries: u64,
    /// Listener-side collisions (≥ 2 transmitting neighbors).
    pub collisions: u64,
    /// Phases that requested [`Kernel::Sparse`](crate::Kernel::Sparse) but
    /// executed the dense reference kernel because the topology view has
    /// no change feed. Zero on every healthy configuration — a nonzero
    /// count means the run silently paid `Θ(n)` per step and should be
    /// surfaced, not ignored (the CLI warns on it).
    pub kernel_fallbacks: u64,
    /// Phases executed ([`Sim::run_phase`](crate::Sim::run_phase) calls).
    pub phases: u64,
    /// The busiest single step: maximum transmissions in any one simulated
    /// step. A cheap occupancy gauge for the sparse kernel's active set
    /// (its per-step work is proportional to this, not to `n`) — and
    /// kernel-invariant, so it participates in the equivalence tests.
    pub peak_step_transmissions: u64,
    /// Spatial-index cell crossings performed by a mobility-backed
    /// topology view ([`TopologyView::index_work`](crate::TopologyView::index_work));
    /// zero for static views.
    pub mobility_cell_crossings: u64,
    /// Grid rows recomputed by a mobility-backed topology view; zero for
    /// static views.
    pub mobility_rows_recomputed: u64,
    /// Wake-heap entries popped by the sparse scheduler (act and listen
    /// deadlines, stale lazy-deletion entries included). Identical between
    /// the sparse and event kernels by construction — both pop exactly the
    /// entries that come due inside the phase — and zero for the dense
    /// kernel, which has no scheduler.
    pub scheduler_events: u64,
    /// Steps the event kernel ([`Kernel::Event`](crate::Kernel::Event))
    /// charged to the clock without executing, because nothing could
    /// observably happen in them. Always zero for the stepping kernels.
    /// `simulated_steps` still counts these (the phase clock is
    /// kernel-invariant); this counter says how many of them were free.
    pub silent_steps_skipped: u64,
}

impl SimStats {
    /// Total clock: simulated plus charged.
    pub fn total_steps(&self) -> u64 {
        self.simulated_steps + self.charged_steps
    }

    /// A copy with every kernel-*dependent* counter zeroed
    /// (`kernel_fallbacks`, `scheduler_events`, `silent_steps_skipped`).
    /// What remains must be byte-identical across the dense, sparse and
    /// event kernels, so cross-kernel equivalence tests compare
    /// `a.kernel_invariant() == b.kernel_invariant()` instead of listing
    /// fields.
    pub fn kernel_invariant(&self) -> SimStats {
        SimStats { kernel_fallbacks: 0, scheduler_events: 0, silent_steps_skipped: 0, ..*self }
    }

    pub(crate) fn absorb_phase(&mut self, rep: &PhaseReport) {
        self.simulated_steps += rep.steps;
        self.transmissions += rep.transmissions;
        self.deliveries += rep.deliveries;
        self.collisions += rep.collisions;
        self.kernel_fallbacks += u64::from(rep.fell_back);
        self.phases += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut s = SimStats::default();
        s.absorb_phase(&PhaseReport {
            steps: 10,
            transmissions: 5,
            deliveries: 3,
            collisions: 1,
            completed: true,
            fell_back: false,
        });
        s.absorb_phase(&PhaseReport {
            steps: 2,
            transmissions: 2,
            deliveries: 2,
            collisions: 0,
            completed: false,
            fell_back: true,
        });
        assert_eq!(s.simulated_steps, 12);
        assert_eq!(s.transmissions, 7);
        assert_eq!(s.deliveries, 5);
        assert_eq!(s.collisions, 1);
        assert_eq!(s.kernel_fallbacks, 1);
        assert_eq!(s.phases, 2);
        assert_eq!(s.total_steps(), 12);
    }

    #[test]
    fn kernel_invariant_zeroes_only_scheduler_counters() {
        let s = SimStats {
            deliveries: 3,
            kernel_fallbacks: 1,
            scheduler_events: 5,
            silent_steps_skipped: 9,
            ..SimStats::default()
        };
        let inv = s.kernel_invariant();
        assert_eq!(inv.kernel_fallbacks, 0);
        assert_eq!(inv.scheduler_events, 0);
        assert_eq!(inv.silent_steps_skipped, 0);
        assert_eq!(inv.deliveries, 3, "invariant counters must survive");
    }
}
