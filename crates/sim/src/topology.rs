//! Pluggable topology views: what the engine consults each time-step.
//!
//! The paper's model is a *static* graph with synchronous wake-up. To
//! measure how the α-parametrized algorithms degrade under structural
//! change (churn, partitions, adversarial jamming, staggered wake-up), the
//! engine no longer reads `&Graph` directly; it consults a [`TopologyView`]
//! at every step. The view answers four questions:
//!
//! * which edges exist *right now* ([`neighbors`](TopologyView::neighbors));
//! * which nodes participate *right now* ([`is_active`](TopologyView::is_active)
//!   — crashed or not-yet-awake nodes neither act nor hear);
//! * which listeners are drowned in noise ([`is_jammed`](TopologyView::is_jammed)
//!   — a jammed listener never decodes, and with collision detection hears a
//!   collision signal);
//! * how the view evolves ([`advance_to`](TopologyView::advance_to), called
//!   once per step with the global clock).
//!
//! [`StaticTopology`] is the zero-cost identity view reproducing the paper's
//! model exactly; `radionet-scenario` provides the dynamic overlay.

use radionet_graph::{Graph, NodeId};

/// A (possibly time-varying) view over a base [`Graph`].
///
/// All methods receive the immutable base graph rather than storing it, so
/// views stay `'static` and cheaply constructible; the engine owns the view
/// and threads the base graph through.
///
/// # Contract
///
/// `advance_to` is called with non-decreasing clock values; after
/// `advance_to(base, t)` the other three methods must describe the topology
/// at time `t`. `neighbors(base, v)` must be a subset of `base.neighbors(v)`
/// (views may remove edges, never invent them), and edge removal must be
/// symmetric.
pub trait TopologyView {
    /// Advances the view's internal state to global clock `clock`.
    fn advance_to(&mut self, base: &Graph, clock: u64);

    /// The *current* neighbors of `v` (a subset of the base adjacency).
    fn neighbors<'a>(&'a self, base: &'a Graph, v: NodeId) -> &'a [NodeId];

    /// Whether `v` currently participates: alive (not crashed) and awake.
    /// Inactive nodes neither act nor hear, and a phase can complete
    /// without them.
    fn is_active(&self, v: NodeId) -> bool;

    /// Whether a listener at `v` is currently drowned by an adjacent
    /// jammer's noise.
    fn is_jammed(&self, v: NodeId) -> bool;

    /// Whether `v` is inactive with **no scheduled return** (permanently
    /// crashed, or defected for good). A phase may complete while retired
    /// nodes are unfinished; it must keep running for nodes that are only
    /// temporarily inactive (asleep, crashed-but-rejoining, jamming for a
    /// window), so their return gets simulated.
    ///
    /// The default treats every inactive node as retired; views that carry
    /// an event timeline should override with pending-event awareness.
    fn is_retired(&self, v: NodeId) -> bool {
        !self.is_active(v)
    }

    /// Whether this view supports the sparse kernel's **batch change feed**
    /// ([`drain_status_changes`](TopologyView::drain_status_changes) and
    /// [`jammed_nodes`](TopologyView::jammed_nodes)). Views answering
    /// `false` force [`Sim::run_phase`](crate::Sim::run_phase) onto the
    /// dense reference kernel, which polls every node every step — always
    /// correct, never fast.
    fn supports_change_feed(&self) -> bool {
        false
    }

    /// Drains the set of nodes whose `is_active` / `is_retired` answer may
    /// have changed since the previous drain, appending them to `out`. The
    /// engine calls this once per step right after
    /// [`advance_to`](TopologyView::advance_to) and re-queries the status of
    /// every reported node, so over-approximating is safe; **omitting a
    /// changed node is not** — the sparse kernel would keep a stale view of
    /// it. Only consulted when
    /// [`supports_change_feed`](TopologyView::supports_change_feed) is true.
    fn drain_status_changes(&mut self, out: &mut Vec<NodeId>) {
        let _ = out;
    }

    /// The exact set of currently jam-exposed nodes (those for which
    /// [`is_jammed`](TopologyView::is_jammed) returns true). The sparse
    /// kernel iterates this instead of scanning all listeners to deliver
    /// the collision-detection "jamming sounds like a collision" signal on
    /// otherwise silent steps. Only consulted when
    /// [`supports_change_feed`](TopologyView::supports_change_feed) is true.
    fn jammed_nodes(&self) -> &[NodeId] {
        &[]
    }

    /// The current node positions (`[x, y, z]`, one per node), when this
    /// view derives its topology from geometry — what
    /// `PositionSource::Live` SINR reception reads after every
    /// [`advance_to`](TopologyView::advance_to). Purely structural views
    /// return `None` (the default), which makes live-position SINR a
    /// construction-time error ([`Sim::try_with_topology`]).
    ///
    /// [`Sim::try_with_topology`]: crate::Sim::try_with_topology
    fn positions(&self) -> Option<&[[f64; 3]]> {
        None
    }

    /// A version stamp for [`positions`](TopologyView::positions): must
    /// change whenever any position may have moved since the previous
    /// call. The engine caches position-derived structures (the sparse
    /// SINR kernel's spatial index) keyed on this value, so a stale stamp
    /// means stale reception geometry. Constant (`0`) for views whose
    /// positions never move.
    fn positions_version(&self) -> u64 {
        0
    }

    /// Whether this view can **bound its next observable change** via
    /// [`next_event`](TopologyView::next_event), which is what the
    /// event-driven kernel ([`Kernel::Event`](crate::Kernel)) needs to jump
    /// the clock over silent spans, and what
    /// `Checkpoint::restore_into` uses to fast-forward a restored topology
    /// event-to-event instead of step-by-step. Views answering `false`
    /// force the event kernel back onto the stepping sparse kernel
    /// (recorded via the `fell_back` path). Only meaningful alongside
    /// [`supports_change_feed`](TopologyView::supports_change_feed).
    fn supports_event_jumps(&self) -> bool {
        false
    }

    /// The earliest global clock `t > clock` at which this view's
    /// observable state (active/jammed/retired status, edge set, positions,
    /// or any [`advance_to`](TopologyView::advance_to)-driven counter) may
    /// next change, or `None` if it never will.
    ///
    /// # Contract (batch fast-forward)
    ///
    /// Callers that jump rely on this being **conservative and complete**:
    /// calling `advance_to(base, t)` for exactly the sequence of times
    /// returned by repeated `next_event` queries must leave the view — and
    /// every deterministic counter it exposes (e.g.
    /// [`index_work`](TopologyView::index_work)) — in the same state as
    /// calling `advance_to` at every intermediate clock value. Returning a
    /// time that turns out to be changeless is safe (the caller lands on an
    /// uneventful step); returning a time *past* a change is not. Only
    /// consulted when
    /// [`supports_event_jumps`](TopologyView::supports_event_jumps) is
    /// true.
    fn next_event(&self, clock: u64) -> Option<u64> {
        let _ = clock;
        None
    }

    /// Cumulative spatial-index maintenance work the view has performed:
    /// `(cell_crossings, rows_recomputed)`. The engine copies these into
    /// [`SimStats`](crate::SimStats) after every phase so mobility-driven
    /// index churn shows up in reports. Counts are totals since
    /// construction (the engine assigns, never adds) and must be a
    /// deterministic function of the advance history — both kernels drive
    /// [`advance_to`](TopologyView::advance_to) identically, so the stats
    /// stay kernel-invariant. Static views report `(0, 0)` (the default).
    fn index_work(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// The paper's model: the base graph itself, always-on, never jammed.
///
/// This is the default view of [`Sim`](crate::Sim) and compiles to the
/// pre-refactor behavior (all methods are trivially inlinable constants or
/// direct CSR reads).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StaticTopology;

impl TopologyView for StaticTopology {
    #[inline]
    fn advance_to(&mut self, _base: &Graph, _clock: u64) {}

    #[inline]
    fn neighbors<'a>(&'a self, base: &'a Graph, v: NodeId) -> &'a [NodeId] {
        base.neighbors(v)
    }

    #[inline]
    fn is_active(&self, _v: NodeId) -> bool {
        true
    }

    #[inline]
    fn is_jammed(&self, _v: NodeId) -> bool {
        false
    }

    /// Nothing ever changes, so the (empty) change feed is trivially exact.
    #[inline]
    fn supports_change_feed(&self) -> bool {
        true
    }

    /// Nothing ever changes, so the next-event bound is trivially exact:
    /// there is none.
    #[inline]
    fn supports_event_jumps(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_view_is_identity() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut view = StaticTopology;
        assert!(view.supports_event_jumps());
        assert_eq!(view.next_event(0), None, "a static view never has a next event");
        view.advance_to(&g, 1000);
        for v in g.nodes() {
            assert_eq!(view.neighbors(&g, v), g.neighbors(v));
            assert!(view.is_active(v));
            assert!(!view.is_jammed(v));
        }
    }
}
