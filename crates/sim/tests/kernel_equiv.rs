//! Differential tests: the sparse active-set kernel and the clock-jumping
//! event kernel must be byte-identical to the dense reference kernel —
//! same [`PhaseReport`]s, same kernel-invariant [`SimStats`], same
//! per-node RNG streams, same final protocol state — across protocol
//! patterns, reception modes, and dynamic topologies. Every case runs the
//! three-way face-off (sparse ≡ dense ≡ event); [`ScriptView`] implements
//! `next_event`, so the event kernel genuinely jumps here rather than
//! falling back.
//!
//! The protocols here are small archetypes of every [`Wake`] pattern the
//! workspace uses: always-on randomized talkers (`Now`), passive listeners
//! with a done promise (`Listen`/`done_at`), flood-style re-engagement
//! (`Listen` forever), slot-scheduled sleepers (`Sleep`), and local
//! termination (`Retire`).

use proptest::prelude::*;
use radionet_graph::{Graph, GraphBuilder, NodeId};
use radionet_sim::{
    injections_ordered, Action, Injection, Kernel, NetInfo, NodeCtx, PhaseReport, Protocol,
    ReceptionMode, Sim, SimStats, TopologyView, Wake,
};
use rand::Rng;

/// Random connected-ish graph from an edge list (isolated nodes allowed —
/// the kernels must agree on those too).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..32).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..90).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

/// A scripted dynamic view: per-node down/up windows and jam windows, with
/// an exact change feed — the sim-level stand-in for `DynamicTopology`
/// (which lives a crate above and gets its own equivalence tests).
#[derive(Clone, Debug)]
struct ScriptView {
    /// Per node: `Some((down_at, up_at))` — inactive in `[down_at, up_at)`;
    /// `up_at == u64::MAX` means it never returns (retired).
    down: Vec<Option<(u64, u64)>>,
    /// Per node: `Some((from, until))` — jam-exposed in `[from, until)`.
    jam: Vec<Option<(u64, u64)>>,
    clock: u64,
    started: bool,
    changed: Vec<NodeId>,
    jam_list: Vec<NodeId>,
}

impl ScriptView {
    fn new(down: Vec<Option<(u64, u64)>>, jam: Vec<Option<(u64, u64)>>) -> Self {
        ScriptView {
            down,
            jam,
            clock: 0,
            started: false,
            changed: Vec::new(),
            jam_list: Vec::new(),
        }
    }

    fn active_at(&self, i: usize, t: u64) -> bool {
        match self.down[i] {
            Some((d, u)) => !(d <= t && t < u),
            None => true,
        }
    }

    fn jammed_at(&self, i: usize, t: u64) -> bool {
        match self.jam[i] {
            Some((f, u)) => f <= t && t < u,
            None => false,
        }
    }
}

impl TopologyView for ScriptView {
    fn advance_to(&mut self, _base: &Graph, clock: u64) {
        let prev = self.clock;
        for i in 0..self.down.len() {
            if !self.started || self.active_at(i, prev) != self.active_at(i, clock) {
                self.changed.push(NodeId::new(i));
            }
        }
        self.started = true;
        self.clock = clock;
        self.jam_list.clear();
        for i in 0..self.jam.len() {
            if self.jammed_at(i, clock) {
                self.jam_list.push(NodeId::new(i));
            }
        }
    }

    fn neighbors<'a>(&'a self, base: &'a Graph, v: NodeId) -> &'a [NodeId] {
        base.neighbors(v)
    }

    fn is_active(&self, v: NodeId) -> bool {
        self.active_at(v.index(), self.clock)
    }

    fn is_jammed(&self, v: NodeId) -> bool {
        self.jammed_at(v.index(), self.clock)
    }

    fn is_retired(&self, v: NodeId) -> bool {
        match self.down[v.index()] {
            Some((d, u)) => d <= self.clock && self.clock < u && u == u64::MAX,
            None => false,
        }
    }

    fn supports_change_feed(&self) -> bool {
        true
    }

    fn drain_status_changes(&mut self, out: &mut Vec<NodeId>) {
        out.append(&mut self.changed);
    }

    fn jammed_nodes(&self) -> &[NodeId] {
        &self.jam_list
    }

    fn supports_event_jumps(&self) -> bool {
        true
    }

    fn next_event(&self, clock: u64) -> Option<u64> {
        // Every window edge is an event: the first step of a down/jam
        // window and the first step after it. Landing on each edge (and
        // nowhere in between) reproduces exactly the status changes and
        // jam sets a step-by-step walk would see.
        let down_edges = self.down.iter().flatten().flat_map(|&(d, u)| [d, u]);
        let jam_edges = self.jam.iter().flatten().flat_map(|&(f, u)| [f, u]);
        down_edges.chain(jam_edges).filter(|&e| e > clock && e < u64::MAX).min()
    }
}

/// Coin-flip transmitter, default hints: stresses raw reception equality.
struct Talker {
    p_milli: u32,
    sent: u64,
    heard: Vec<u32>,
}

impl Protocol for Talker {
    type Msg = u32;
    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u32> {
        if ctx.rng.gen_bool(self.p_milli as f64 / 1000.0) {
            self.sent += 1;
            Action::Transmit(self.sent as u32)
        } else {
            Action::Listen
        }
    }
    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &u32) {
        self.heard.push(*msg);
    }
}

/// Flood archetype: passive until informed, chatters for `active_for`
/// steps, then retires. Covers Listen-forever, re-engagement, Now, Retire.
struct Flooder {
    best: Option<u32>,
    active_steps: u64,
    active_for: u64,
    heard: u64,
}

impl Flooder {
    fn live(&self) -> bool {
        self.best.is_some() && self.active_steps < self.active_for
    }
}

impl Protocol for Flooder {
    type Msg = u32;
    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u32> {
        match self.best {
            None => Action::Listen,
            Some(m) if self.active_steps < self.active_for => {
                self.active_steps += 1;
                if ctx.rng.gen_bool(0.4) {
                    Action::Transmit(m)
                } else {
                    Action::Listen
                }
            }
            Some(_) => Action::Idle,
        }
    }
    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, msg: &u32) {
        self.heard += 1;
        if self.best.is_none_or(|b| b < *msg) {
            self.best = Some(*msg);
        }
    }
    fn is_done(&self) -> bool {
        self.best.is_some() && self.active_steps >= self.active_for
    }
    fn next_wake(&self, _now: u64) -> Wake {
        if self.best.is_none() {
            Wake::listen()
        } else if self.live() {
            Wake::Now
        } else {
            Wake::Retire
        }
    }
}

/// Slot-scheduled beacon: transmits at steps ≡ 0 (mod `period`), sleeps
/// (deaf) in between, done at `horizon`. Covers Sleep + done_at promises.
struct SlotBeacon {
    period: u64,
    horizon: u64,
    last: u64,
    txs: u64,
}

impl Protocol for SlotBeacon {
    type Msg = u32;
    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u32> {
        self.last = ctx.time;
        if ctx.time >= self.horizon {
            Action::Idle
        } else if ctx.time.is_multiple_of(self.period) {
            self.txs += 1;
            Action::Transmit(9)
        } else {
            Action::Idle
        }
    }
    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &u32) {}
    fn is_done(&self) -> bool {
        self.last + 1 >= self.horizon
    }
    fn next_wake(&self, now: u64) -> Wake {
        if now + 1 >= self.horizon {
            return Wake::Retire;
        }
        let next_slot = (now / self.period + 1) * self.period;
        Wake::Sleep { wake_at: next_slot.min(self.horizon), done_at: Some(self.horizon - 1) }
    }
}

/// Multi-message traffic archetype: the sim-level skeleton of the
/// queue-draining gossip pipeline. Every id learned — by out-of-band
/// injection or over the air — stays hot for `hot_window` steps; while
/// anything is hot the node flips one coin per step and relays the
/// round-robin pick of its hot set. Exercises the injection path (arrival
/// wake-ups, arrivals on churned-down nodes, event-kernel jump clamping)
/// that none of the other archetypes touch.
struct TrafficNode {
    hot_window: u64,
    horizon: u64,
    known: Vec<(u64, u64)>,
    last: u64,
}

impl TrafficNode {
    fn learn(&mut self, id: u64, at: u64) {
        if !self.known.iter().any(|&(k, _)| k == id) {
            self.known.push((id, at));
        }
    }

    fn hot_at(&self, now: u64) -> Option<u64> {
        let hot: Vec<u64> = self
            .known
            .iter()
            .filter(|&&(_, at)| now >= at && now - at < self.hot_window)
            .map(|&(id, _)| id)
            .collect();
        if hot.is_empty() {
            None
        } else {
            Some(hot[(now % hot.len() as u64) as usize])
        }
    }
}

impl Protocol for TrafficNode {
    type Msg = u64;
    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u64> {
        self.last = ctx.time;
        if ctx.time >= self.horizon {
            return Action::Idle;
        }
        match self.hot_at(ctx.time) {
            Some(id) if ctx.rng.gen_bool(0.45) => Action::Transmit(id),
            _ => Action::Listen,
        }
    }
    fn on_hear(&mut self, ctx: &mut NodeCtx<'_>, msg: &u64) {
        self.learn(*msg, ctx.time);
    }
    fn on_inject(&mut self, ctx: &mut NodeCtx<'_>, msg: &u64) {
        self.learn(*msg, ctx.time);
    }
    fn is_done(&self) -> bool {
        self.last + 1 >= self.horizon
    }
    fn next_wake(&self, now: u64) -> Wake {
        if now + 1 >= self.horizon {
            return Wake::Retire;
        }
        if self.hot_at(now + 1).is_some() {
            return Wake::Now;
        }
        Wake::Listen { wake_at: Wake::NEVER, done_at: Some(self.horizon - 1) }
    }
}

/// Passive CD listener: counts messages and collision signals, never done.
struct CdEar {
    heard: u64,
    collisions: u64,
}

impl Protocol for CdEar {
    type Msg = u32;
    fn act(&mut self, _ctx: &mut NodeCtx<'_>) -> Action<u32> {
        Action::Listen
    }
    fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &u32) {
        self.heard += 1;
    }
    fn on_collision(&mut self, _ctx: &mut NodeCtx<'_>) {
        self.collisions += 1;
    }
    fn next_wake(&self, _now: u64) -> Wake {
        Wake::listen()
    }
}

fn all_kernels<P, F, S>(
    mk: F,
    view: &ScriptView,
    g: &Graph,
    seed: u64,
    steps: u64,
) -> [(PhaseReport, SimStats, u64, Vec<S>); 3]
where
    P: Protocol,
    F: Fn(usize) -> P,
    S: PartialEq + std::fmt::Debug,
    P: Snapshot<S>,
{
    all_kernels_with(mk, view, g, seed, steps, ReceptionMode::Protocol)
}

/// Runs the same phase under all three kernels (sparse, dense, event) and
/// returns the observables with kernel-dependent stats counters zeroed, so
/// callers compare whole tuples. Sparse/event scheduler parity (identical
/// heap pops) is asserted here once, before the counters are erased.
fn all_kernels_with<P, F, S>(
    mk: F,
    view: &ScriptView,
    g: &Graph,
    seed: u64,
    steps: u64,
    reception: ReceptionMode,
) -> [(PhaseReport, SimStats, u64, Vec<S>); 3]
where
    P: Protocol,
    F: Fn(usize) -> P,
    S: PartialEq + std::fmt::Debug,
    P: Snapshot<S>,
{
    let mut runs = [Kernel::Sparse, Kernel::Dense, Kernel::Event].map(|kernel| {
        let info = NetInfo { n: g.n().max(2), d: 4, alpha: (g.n() as f64).max(2.0) };
        let mut sim = Sim::with_topology(g, view.clone(), info, seed, reception.clone());
        sim.set_kernel(kernel);
        let mut states: Vec<P> = (0..g.n()).map(&mk).collect();
        let rep = sim.run_phase(&mut states, steps);
        (rep, *sim.stats(), sim.rng_fingerprint(), states.iter().map(Snapshot::snapshot).collect())
    });
    assert_eq!(
        runs[0].1.scheduler_events, runs[2].1.scheduler_events,
        "event kernel must pop exactly the wake entries sparse pops"
    );
    for r in &mut runs {
        r.1 = r.1.kernel_invariant();
    }
    runs
}

/// One kernel's traffic outcome: report, invariant stats, RNG
/// fingerprint, and every node's learned `(message, step)` history.
type TrafficRun = (PhaseReport, SimStats, u64, Vec<Vec<(u64, u64)>>);

/// Runs a traffic phase (gossip nodes + an injection schedule) under all
/// three kernels; same comparison contract as [`all_kernels_with`].
fn all_kernels_injected(
    view: &ScriptView,
    g: &Graph,
    seed: u64,
    steps: u64,
    hot_window: u64,
    injections: &[Injection<u64>],
) -> [TrafficRun; 3] {
    let mut runs = [Kernel::Sparse, Kernel::Dense, Kernel::Event].map(|kernel| {
        let info = NetInfo { n: g.n().max(2), d: 4, alpha: (g.n() as f64).max(2.0) };
        let mut sim = Sim::with_topology(g, view.clone(), info, seed, ReceptionMode::Protocol);
        sim.set_kernel(kernel);
        let mut states: Vec<TrafficNode> = (0..g.n())
            .map(|_| TrafficNode { hot_window, horizon: steps, known: Vec::new(), last: 0 })
            .collect();
        let rep = sim.run_phase_with_injections(&mut states, steps, injections);
        (rep, *sim.stats(), sim.rng_fingerprint(), states.iter().map(|s| s.known.clone()).collect())
    });
    assert_eq!(
        runs[0].1.scheduler_events, runs[2].1.scheduler_events,
        "event kernel must pop exactly the wake entries sparse pops"
    );
    for r in &mut runs {
        r.1 = r.1.kernel_invariant();
    }
    runs
}

/// A position snapshot scattering `n` nodes over a square whose side keeps
/// density roughly constant — the regime where SINR capture, interference
/// loss, and clean decodes all occur.
fn arb_positions(n: usize) -> impl Strategy<Value = Vec<[f64; 3]>> {
    let side = (n as f64).sqrt() * 1.8 + 1.0;
    proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), n..=n)
        .prop_map(move |raw| raw.into_iter().map(|(x, y)| [x * side, y * side, 0.0]).collect())
}

fn sinr_mode(points: Vec<[f64; 3]>) -> ReceptionMode {
    ReceptionMode::Sinr(radionet_sim::SinrConfig::for_unit_range(points, 1.0))
}

/// Extracts the externally observable state for comparison.
trait Snapshot<S> {
    fn snapshot(&self) -> S;
}

impl Snapshot<(u64, Vec<u32>)> for Talker {
    fn snapshot(&self) -> (u64, Vec<u32>) {
        (self.sent, self.heard.clone())
    }
}

impl Snapshot<(Option<u32>, u64, u64)> for Flooder {
    fn snapshot(&self) -> (Option<u32>, u64, u64) {
        (self.best, self.active_steps, self.heard)
    }
}

impl Snapshot<u64> for SlotBeacon {
    fn snapshot(&self) -> u64 {
        // `last` is internal bookkeeping the Wake contract lets go stale in
        // skipped windows; the transmission count is the observable.
        self.txs
    }
}

fn arb_view(n: usize) -> impl Strategy<Value = ScriptView> {
    // The vendored proptest has no `option::of`; a small discriminant range
    // plays the same role (1-in-3 nodes get a down window, 1-in-4 a jam
    // window).
    let down = proptest::collection::vec(
        (0u8..3, 0u64..30, 0u64..40).prop_map(|(k, d, len)| {
            (k == 0).then_some((d, if len > 35 { u64::MAX } else { d + len }))
        }),
        n..=n,
    );
    let jam = proptest::collection::vec(
        (0u8..4, 0u64..30, 1u64..20).prop_map(|(k, f, len)| (k == 0).then_some((f, f + len))),
        n..=n,
    );
    (down, jam).prop_map(|(down, jam)| ScriptView::new(down, jam))
}

/// A graph together with a scripted dynamic view over it.
fn arb_dynamic_case() -> impl Strategy<Value = (Graph, ScriptView)> {
    arb_graph().prop_flat_map(|g| {
        let n = g.n();
        (Just(g), arb_view(n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn talkers_agree(
        g in arb_graph(),
        seed in 0u64..1000,
        p in 1u32..700,
        steps in 1u64..60,
    ) {
        let view = ScriptView::new(vec![None; g.n()], vec![None; g.n()]);
        let [a, b, c] = all_kernels(
            |_| Talker { p_milli: p, sent: 0, heard: Vec::new() },
            &view, &g, seed, steps,
        );
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }

    #[test]
    fn talkers_agree_under_dynamics(
        case in arb_dynamic_case(),
        seed in 0u64..1000,
        steps in 1u64..60,
    ) {
        let (g, view) = case;
        let [a, b, c] = all_kernels(
            |_| Talker { p_milli: 300, sent: 0, heard: Vec::new() },
            &view, &g, seed, steps,
        );
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }

    #[test]
    fn flooders_agree(
        g in arb_graph(),
        seed in 0u64..1000,
        active_for in 1u64..20,
        steps in 1u64..120,
    ) {
        let view = ScriptView::new(vec![None; g.n()], vec![None; g.n()]);
        let [a, b, c] = all_kernels(
            |i| Flooder {
                best: (i == 0).then_some(100),
                active_steps: 0,
                active_for,
                heard: 0,
            },
            &view, &g, seed, steps,
        );
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }

    #[test]
    fn flooders_agree_under_dynamics(
        case in arb_dynamic_case(),
        seed in 0u64..1000,
        active_for in 1u64..16,
        steps in 1u64..90,
    ) {
        let (g, view) = case;
        let [a, b, c] = all_kernels(
            |i| Flooder {
                best: (i == 0).then_some(100),
                active_steps: 0,
                active_for,
                heard: 0,
            },
            &view, &g, seed, steps,
        );
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }

    #[test]
    fn slot_beacons_agree(
        g in arb_graph(),
        seed in 0u64..1000,
        period in 1u64..9,
        horizon in 1u64..50,
        steps in 1u64..70,
    ) {
        let view = ScriptView::new(vec![None; g.n()], vec![None; g.n()]);
        let [a, b, c] = all_kernels(
            |_| SlotBeacon { period, horizon, last: 0, txs: 0 },
            &view, &g, seed, steps,
        );
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }

    /// Streaming traffic under churn and jamming: a random injection
    /// schedule (arrivals may land on down or jam-exposed nodes) flooded
    /// by the queue-draining archetype must leave every kernel with the
    /// identical known set on every node — the differential guarantee the
    /// traffic pipeline's delivery ledger is built on.
    #[test]
    fn traffic_injections_agree_under_dynamics(
        case in arb_dynamic_case(),
        raw in proptest::collection::vec((0u64..60, 0u64..1000, 0u64..10), 0..16),
        seed in 0u64..1000,
        hot_window in 1u64..24,
        steps in 1u64..90,
    ) {
        let (g, view) = case;
        let n = g.n() as u64;
        let mut inj: Vec<Injection<u64>> = raw
            .into_iter()
            .map(|(at, node, msg)| Injection { at, node: (node % n) as u32, msg })
            .collect();
        inj.sort_by_key(|i| (i.at, i.node, i.msg));
        prop_assert!(injections_ordered(&inj));
        let [a, b, c] = all_kernels_injected(&view, &g, seed, steps, hot_window, &inj);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }

    /// SINR reception on a static topology: the spatially-indexed sparse
    /// resolution must be bit-identical to the dense O(L×T) scan —
    /// reports, stats (incl. the fallback counter), RNG streams, state.
    #[test]
    fn talkers_agree_under_sinr(
        g in arb_graph(),
        seed in 0u64..1000,
        p in 1u32..700,
        steps in 1u64..60,
    ) {
        let n = g.n();
        let view = ScriptView::new(vec![None; n], vec![None; n]);
        let [a, b, c] = all_kernels_with(
            |_| Talker { p_milli: p, sent: 0, heard: Vec::new() },
            &view, &g, seed, steps,
            sinr_mode((0..n).map(|i| {
                // Deterministic scatter keyed on the seed: positions must
                // be identical across the two kernel runs.
                let h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i as u64);
                let side = (n as f64).sqrt() * 1.8 + 1.0;
                let x = (h % 1024) as f64 / 1024.0 * side;
                let y = ((h >> 10) % 1024) as f64 / 1024.0 * side;
                [x, y, 0.0]
            }).collect()),
        );
        prop_assert_eq!(a.0.fell_back, false, "SINR must run sparse");
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }

    /// SINR under scripted dynamics (crash/rejoin windows + jam windows):
    /// physical reception composes with node-state events identically in
    /// both kernels.
    #[test]
    fn talkers_agree_under_sinr_with_dynamics(
        case in arb_dynamic_case(),
        positions_seed in 0u64..1000,
        seed in 0u64..1000,
        steps in 1u64..60,
    ) {
        let (g, view) = case;
        let n = g.n();
        let side = (n as f64).sqrt() * 1.8 + 1.0;
        let pts: Vec<[f64; 3]> = (0..n).map(|i| {
            let h = positions_seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(i as u64 * 7);
            [(h % 2048) as f64 / 2048.0 * side, ((h >> 11) % 2048) as f64 / 2048.0 * side, 0.0]
        }).collect();
        let [a, b, c] = all_kernels_with(
            |_| Talker { p_milli: 300, sent: 0, heard: Vec::new() },
            &view, &g, seed, steps,
            sinr_mode(pts),
        );
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }

    /// Flooders (re-engagement via on_hear) under SINR: the sparse
    /// kernel's post-delivery wake handling must match on physically
    /// delivered messages too.
    #[test]
    fn flooders_agree_under_sinr(
        g in arb_graph(),
        pts in (3usize..32).prop_flat_map(arb_positions),
        seed in 0u64..1000,
        active_for in 1u64..16,
        steps in 1u64..90,
    ) {
        let n = g.n();
        let mut pts = pts;
        pts.resize(n, [0.5, 0.5, 0.0]);
        let view = ScriptView::new(vec![None; n], vec![None; n]);
        let [a, b, c] = all_kernels_with(
            |i| Flooder {
                best: (i == 0).then_some(100),
                active_steps: 0,
                active_for,
                heard: 0,
            },
            &view, &g, seed, steps,
            sinr_mode(pts),
        );
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }

    /// Cutoff ≈ Exact: with the tolerance epsilon the truncated
    /// interference sum may only flip borderline collisions into
    /// deliveries (one-sided), and with a tiny epsilon the cutoff radius
    /// covers everything, reproducing Exact bit-for-bit.
    #[test]
    fn cutoff_is_one_sided_and_tight_at_small_eps(
        g in arb_graph(),
        pts in (3usize..32).prop_flat_map(arb_positions),
        seed in 0u64..1000,
        steps in 1u64..50,
    ) {
        use radionet_sim::{FarFieldPolicy, SinrConfig};
        let n = g.n();
        let mut pts = pts;
        pts.resize(n, [0.5, 0.5, 0.0]);
        let view = ScriptView::new(vec![None; n], vec![None; n]);
        let run = |far_field| {
            let cfg = SinrConfig::for_unit_range(pts.clone(), 1.0).with_far_field(far_field);
            all_kernels_with(
                |_| Talker { p_milli: 400, sent: 0, heard: Vec::new() },
                &view, &g, seed, steps,
                ReceptionMode::Sinr(cfg),
            )
        };
        let [exact_sparse, exact_dense, exact_event] = run(FarFieldPolicy::Exact);
        prop_assert_eq!(&exact_sparse, &exact_dense);
        prop_assert_eq!(&exact_sparse, &exact_event);
        // A sub-nano epsilon pushes the cutoff radius beyond every pair
        // distance here, so the sparse run must equal Exact exactly.
        let [tight, _, tight_event] = run(FarFieldPolicy::Cutoff(1e-12));
        prop_assert_eq!(&tight, &exact_sparse);
        prop_assert_eq!(&tight_event, &tight);
        // A loose epsilon: one-sided — truncating interference can only
        // raise the computed SINR, so each flip converts a collision into
        // a delivery. Talkers transmit independently of what they hear,
        // so the per-step decodable set is identical and the
        // delivery+collision total is conserved exactly.
        let [loose, _, _] = run(FarFieldPolicy::Cutoff(0.25));
        prop_assert_eq!(loose.0.transmissions, exact_sparse.0.transmissions);
        prop_assert!(loose.0.deliveries >= exact_sparse.0.deliveries);
        prop_assert!(loose.0.collisions <= exact_sparse.0.collisions);
        prop_assert_eq!(
            loose.0.deliveries + loose.0.collisions,
            exact_sparse.0.deliveries + exact_sparse.0.collisions
        );
    }
}

/// CD mode with jam windows and churn: exercised outside the proptest macro
/// because the state extraction differs (collision counters).
#[test]
fn cd_jam_and_churn_agree() {
    for seed in 0..40u64 {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]).unwrap();
        let down = vec![None, Some((3, 9)), None, Some((5, u64::MAX)), None, None];
        let jam = vec![Some((2, 8)), None, None, None, Some((0, 4)), None];
        let run = |kernel| {
            let view = ScriptView::new(down.clone(), jam.clone());
            let info = NetInfo { n: 6, d: 3, alpha: 3.0 };
            let mut sim = Sim::with_topology(&g, view, info, seed, ReceptionMode::ProtocolCd);
            sim.set_kernel(kernel);
            // Nodes 0..3 talk; 3..6 are passive CD ears. Same type is
            // needed per phase, so talkers are CdEar-wrapped Talkers: use
            // two separate phases instead.
            let mut talkers: Vec<Talker> = (0..6)
                .map(|i| Talker { p_milli: if i < 3 { 500 } else { 0 }, sent: 0, heard: vec![] })
                .collect();
            let rep1 = sim.run_phase(&mut talkers, 12);
            let mut ears: Vec<CdEar> = (0..6).map(|_| CdEar { heard: 0, collisions: 0 }).collect();
            let rep2 = sim.run_phase(&mut ears, 12);
            (
                rep1,
                rep2,
                sim.stats().kernel_invariant(),
                sim.rng_fingerprint(),
                talkers.iter().map(|t| (t.sent, t.heard.clone())).collect::<Vec<_>>(),
                ears.iter().map(|e| (e.heard, e.collisions)).collect::<Vec<_>>(),
            )
        };
        let sparse = run(Kernel::Sparse);
        assert_eq!(sparse, run(Kernel::Dense), "seed {seed}");
        assert_eq!(sparse, run(Kernel::Event), "seed {seed}");
    }
}

/// The event kernel must genuinely jump (not just match): slot beacons that
/// sleep 25-step windows leave most of the clock silent, and the skip
/// counter has to show it while every observable stays identical to sparse.
#[test]
fn event_kernel_actually_skips() {
    let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
    let info = NetInfo { n: 3, d: 2, alpha: 3.0 };
    let run = |kernel| {
        let mut sim = Sim::new(&g, info, 11);
        sim.set_kernel(kernel);
        let mut states: Vec<SlotBeacon> =
            (0..3).map(|_| SlotBeacon { period: 25, horizon: 200, last: 0, txs: 0 }).collect();
        let rep = sim.run_phase(&mut states, 300);
        (rep, *sim.stats(), sim.rng_fingerprint())
    };
    let (rep_s, st_s, fp_s) = run(Kernel::Sparse);
    let (rep_e, st_e, fp_e) = run(Kernel::Event);
    assert_eq!(rep_s, rep_e);
    assert_eq!(fp_s, fp_e);
    assert_eq!(st_s.kernel_invariant(), st_e.kernel_invariant());
    assert_eq!(st_s.scheduler_events, st_e.scheduler_events);
    assert_eq!(st_s.silent_steps_skipped, 0, "sparse never skips");
    assert!(
        st_e.silent_steps_skipped > 100,
        "beacons sleeping 25-step slots must skip most of the clock, skipped only {}",
        st_e.silent_steps_skipped
    );
}

/// A protocol whose hints lie (claims passivity but keeps drawing
/// randomness) would diverge — sanity-check that the harness catches real
/// differences, i.e. the comparison isn't vacuous.
#[test]
fn comparison_is_not_vacuous() {
    struct Liar {
        drew: u64,
    }
    impl Protocol for Liar {
        type Msg = ();
        fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<()> {
            self.drew += ctx.rng.gen_bool(0.5) as u64;
            Action::Listen
        }
        fn on_hear(&mut self, _ctx: &mut NodeCtx<'_>, _msg: &()) {}
        fn next_wake(&self, _now: u64) -> Wake {
            Wake::listen() // a lie: act draws randomness every step
        }
    }
    let g = Graph::from_edges(2, [(0, 1)]).unwrap();
    let run = |kernel| {
        let info = NetInfo { n: 2, d: 1, alpha: 1.0 };
        let mut sim = Sim::new(&g, info, 7);
        sim.set_kernel(kernel);
        let mut states = vec![Liar { drew: 0 }, Liar { drew: 0 }];
        sim.run_phase(&mut states, 20);
        (sim.rng_fingerprint(), states[0].drew + states[1].drew)
    };
    assert_ne!(run(Kernel::Sparse), run(Kernel::Dense), "a lying hint must be detectable");
    assert_ne!(run(Kernel::Event), run(Kernel::Dense), "under the event kernel too");
}
