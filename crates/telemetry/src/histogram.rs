//! The log2-bucketed histogram and its percentile summary.

/// A fixed-size histogram over `u64` samples, bucketed by bit length:
/// bucket 0 holds the value 0, bucket `b ≥ 1` holds `[2^(b-1), 2^b - 1]`
/// — 65 buckets total, no allocation, O(1) insert.
///
/// Percentiles are nearest-rank estimates resolved to the **upper bound**
/// of the rank's bucket (clamped to the exact observed maximum), so a
/// reported p99 is conservative: at least 99% of samples were at or below
/// it. For wall-clock latencies — spanning nanoseconds to seconds — the
/// factor-of-two resolution is exactly the fidelity a log2 bucket buys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram { buckets: [0; 65], count: 0, sum: 0, max: 0 }
    }
}

/// The summary a [`Log2Histogram`] renders to: totals plus the standard
/// latency quantiles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Exact observed maximum.
    pub max: u64,
    /// Upper-bound estimate of the 50th percentile.
    pub p50: u64,
    /// Upper-bound estimate of the 90th percentile.
    pub p90: u64,
    /// Upper-bound estimate of the 99th percentile.
    pub p99: u64,
}

impl Log2Histogram {
    /// The bucket index of `value` (its bit length).
    #[inline]
    fn bucket(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The largest value bucket `b` can hold.
    fn bucket_upper(b: usize) -> u64 {
        match b {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << b) - 1,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact observed maximum (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper-bound nearest-rank estimate of quantile `q` in `[0, 1]`
    /// (0 when the histogram is empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Totals plus p50/p90/p99 in one pass-friendly struct.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_bit_length() {
        assert_eq!(Log2Histogram::bucket(0), 0);
        assert_eq!(Log2Histogram::bucket(1), 1);
        assert_eq!(Log2Histogram::bucket(2), 2);
        assert_eq!(Log2Histogram::bucket(3), 2);
        assert_eq!(Log2Histogram::bucket(4), 3);
        assert_eq!(Log2Histogram::bucket(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_upper(0), 0);
        assert_eq!(Log2Histogram::bucket_upper(3), 7);
        assert_eq!(Log2Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(Log2Histogram::default().summary(), HistogramSummary::default());
    }

    #[test]
    fn quantiles_are_upper_bounds_clamped_to_max() {
        let mut h = Log2Histogram::default();
        for v in [1u64, 2, 3, 100] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!((s.count, s.sum, s.max), (4, 106, 100));
        // rank ceil(0.5*4)=2 lands in bucket 2 ([2,3]) → upper bound 3.
        assert_eq!(s.p50, 3);
        // p99 rank 4 lands in bucket 7 ([64,127]) → clamped to max 100.
        assert_eq!(s.p99, 100);
        // Every quantile estimate dominates the true nearest-rank value.
        assert!(s.p50 >= 2 && s.p90 >= 3);
    }

    #[test]
    fn single_sample_quantiles_are_exact_at_max() {
        let mut h = Log2Histogram::default();
        h.observe(1000);
        let s = h.summary();
        assert_eq!((s.p50, s.p90, s.p99, s.max), (1000, 1000, 1000, 1000));
    }

    #[test]
    fn zero_samples_stay_in_bucket_zero() {
        let mut h = Log2Histogram::default();
        for _ in 0..10 {
            h.observe(0);
        }
        let s = h.summary();
        assert_eq!((s.p50, s.p99, s.max, s.sum), (0, 0, 0, 0));
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Log2Histogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
