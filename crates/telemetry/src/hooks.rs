//! The [`Telemetry`] trait instrumented code records through, the
//! zero-cost [`NoTelemetry`] handle, and the timing-scope helpers.

use std::time::Instant;

/// Receiver of metric observations.
///
/// Instrumented components are generic over their handle and guard every
/// site with `if M::ENABLED` — a monomorphized constant, so the default
/// [`NoTelemetry`] compiles the instrumentation out entirely (the same
/// technique as the journal layer's `NullSink`). Methods take `&self`:
/// the enabled implementation ([`Registry`](crate::Registry)) is
/// internally synchronized and shared across threads by cloning.
///
/// Metric names are `&'static str` and unit-suffixed by convention
/// (`*_micros` for wall time in microseconds); the README's metrics
/// glossary is the authoritative catalogue.
pub trait Telemetry {
    /// Whether this handle records anything at all. `false` compiles
    /// every instrumentation site out (callers guard with this constant).
    const ENABLED: bool;

    /// Adds `delta` to the named monotone counter.
    fn count(&self, name: &'static str, delta: u64);

    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: u64);

    /// Records one sample into the named [`crate::Log2Histogram`].
    fn observe(&self, name: &'static str, value: u64);
}

/// The do-nothing handle: `ENABLED = false`, so instrumentation
/// monomorphizes away entirely. The default everywhere.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoTelemetry;

impl Telemetry for NoTelemetry {
    const ENABLED: bool = false;

    #[inline(always)]
    fn count(&self, _name: &'static str, _delta: u64) {}

    #[inline(always)]
    fn gauge(&self, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn observe(&self, _name: &'static str, _value: u64) {}
}

/// A timing scope: started against a handle type, stopped into a named
/// histogram (microseconds). Under a disabled handle neither endpoint
/// reads the clock:
///
/// ```
/// use radionet_telemetry::{NoTelemetry, Registry, Stopwatch, Telemetry};
///
/// fn work<M: Telemetry>(tel: &M) {
///     let sw = Stopwatch::start::<M>();
///     // ... the measured section ...
///     sw.stop(tel, "work_micros");
/// }
///
/// work(&NoTelemetry); // no clock reads, no recording
/// let registry = Registry::default();
/// work(&registry);
/// assert_eq!(registry.snapshot().histograms[0].count, 1);
/// ```
#[derive(Debug)]
#[must_use = "a stopwatch only records when stopped"]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Starts a scope; reads the clock only when `M::ENABLED`.
    #[inline(always)]
    pub fn start<M: Telemetry>() -> Stopwatch {
        Stopwatch(if M::ENABLED { Some(Instant::now()) } else { None })
    }

    /// Ends the scope, recording elapsed microseconds into `name`.
    #[inline(always)]
    pub fn stop<M: Telemetry>(self, tel: &M, name: &'static str) {
        if let Some(t0) = self.0 {
            tel.observe(name, t0.elapsed().as_micros() as u64);
        }
    }
}

/// Runs `f`, adding its elapsed **nanoseconds** to `acc` when `M::ENABLED`
/// — the accumulator pattern for per-step sections that are observed once
/// per phase (a histogram sample per engine step would be noise; the
/// per-phase total is the meaningful magnitude). Disabled handles call `f`
/// directly with no clock reads.
#[inline(always)]
pub fn timed<M: Telemetry, R>(acc: &mut u64, f: impl FnOnce() -> R) -> R {
    if M::ENABLED {
        let t0 = Instant::now();
        let r = f();
        *acc += t0.elapsed().as_nanos() as u64;
        r
    } else {
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_telemetry_is_disabled_and_silent() {
        const { assert!(!NoTelemetry::ENABLED) };
        let t = NoTelemetry;
        t.count("c", 1);
        t.gauge("g", 2);
        t.observe("h", 3);
        let sw = Stopwatch::start::<NoTelemetry>();
        sw.stop(&t, "h");
    }

    #[test]
    fn timed_skips_the_clock_when_disabled() {
        let mut acc = 0u64;
        let out = timed::<NoTelemetry, _>(&mut acc, || 7);
        assert_eq!((out, acc), (7, 0));
    }

    #[test]
    fn timed_accumulates_when_enabled() {
        let registry = crate::Registry::default();
        let mut acc = 0u64;
        let _ = &registry; // enabled type drives the accumulation
        let out = timed::<crate::Registry, _>(&mut acc, || std::hint::black_box(1 + 1));
        assert_eq!(out, 2);
        // Not asserting a lower bound: a fast clock may round to 0ns,
        // but the call path must at least have executed.
    }
}
