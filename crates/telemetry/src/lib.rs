//! Runtime telemetry for the radionet workspace: wall-clock metrics that
//! live strictly **outside** the deterministic surface.
//!
//! The design mirrors the journal layer's `NullSink`: every instrumented
//! component is generic over a [`Telemetry`] handle whose `ENABLED`
//! associated constant is monomorphized into the guard of each
//! instrumentation site. With the default [`NoTelemetry`] the guards fold
//! to `if false` and the whole metrics plane compiles out of the hot path
//! — an uninstrumented run costs exactly what it did before this crate
//! existed (the E21 bench smoke pins that with an E15-style overhead
//! assertion). With a [`Registry`] the same sites record into shared
//! counters, gauges, and [`Log2Histogram`]s.
//!
//! **The determinism contract.** Telemetry observes wall time and sizes;
//! it never steers. Reports, RNG streams, journals, and cache keys are
//! byte-identical with telemetry on or off — equivalence tests in the
//! `radionet-api` and `radionet-service` crates enforce this, which is
//! also why run specs carry no telemetry knob: attaching a registry is a
//! property of the *process* (a driver, a daemon), never of the cell.
//!
//! Three vocabularies:
//!
//! * [`Telemetry`] / [`NoTelemetry`] / [`Registry`] — the recording hooks
//!   plus the [`Stopwatch`] and [`timed`] helpers for timing scopes;
//! * [`MetricsSnapshot`] — the versioned serde view of a registry
//!   ([`Registry::snapshot`]), rendered for humans by
//!   [`render_prometheus`];
//! * [`ProgressSink`] / [`ProgressMeter`] — rate-limited live progress
//!   events with throughput and ETA, for long sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod hooks;
mod progress;
mod registry;
mod snapshot;

pub use histogram::{HistogramSummary, Log2Histogram};
pub use hooks::{timed, NoTelemetry, Stopwatch, Telemetry};
pub use progress::{MemoryProgress, ProgressEvent, ProgressMeter, ProgressSink};
pub use registry::Registry;
pub use snapshot::{
    render_prometheus, CounterSample, GaugeSample, HistogramSample, MetricsSnapshot,
    METRICS_SNAPSHOT_VERSION,
};
