//! Live progress for long-running sweeps: rate-limited events carrying
//! throughput and an ETA.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One progress observation (what a `--progress` stderr line or a JSONL
/// progress stream renders).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProgressEvent {
    /// Work items completed so far.
    pub done: u64,
    /// Total work items (0 when unknown).
    pub total: u64,
    /// Wall seconds since the meter started.
    pub elapsed_secs: f64,
    /// Completed items per wall second (0 until the clock has advanced).
    pub per_sec: f64,
    /// Estimated wall seconds to completion (0 when unknowable: no
    /// throughput yet or `total` unknown).
    pub eta_secs: f64,
}

impl ProgressEvent {
    /// A compact single-line rendering (`done/total items, rate, ETA`),
    /// what `radionet sweep --progress` writes to stderr.
    pub fn render(&self) -> String {
        if self.total > 0 {
            format!(
                "{}/{} cells ({:.1}%) {:.1}/s eta {:.0}s",
                self.done,
                self.total,
                100.0 * self.done as f64 / self.total as f64,
                self.per_sec,
                self.eta_secs
            )
        } else {
            format!("{} cells {:.1}/s", self.done, self.per_sec)
        }
    }
}

/// Receiver of [`ProgressEvent`]s.
pub trait ProgressSink {
    /// Handles one (already rate-limited) progress event.
    fn progress(&mut self, event: &ProgressEvent);
}

/// A `ProgressSink` buffering every event — tests and batch consumers.
#[derive(Default)]
pub struct MemoryProgress {
    /// The events received, in order.
    pub events: Vec<ProgressEvent>,
}

impl ProgressSink for MemoryProgress {
    fn progress(&mut self, event: &ProgressEvent) {
        self.events.push(*event);
    }
}

/// Tracks completions against a known total and emits rate-limited
/// [`ProgressEvent`]s: at most one per `interval`, plus always the final
/// one (so short sweeps still report their completion).
#[derive(Debug)]
pub struct ProgressMeter {
    total: u64,
    done: u64,
    started: Instant,
    last_emit: Option<Instant>,
    interval: Duration,
}

impl ProgressMeter {
    /// A meter over `total` work items emitting at most ~5 events/sec.
    pub fn new(total: u64) -> ProgressMeter {
        ProgressMeter::with_interval(total, Duration::from_millis(200))
    }

    /// A meter with an explicit minimum interval between events
    /// (`Duration::ZERO` emits on every tick — tests).
    pub fn with_interval(total: u64, interval: Duration) -> ProgressMeter {
        ProgressMeter { total, done: 0, started: Instant::now(), last_emit: None, interval }
    }

    /// Work items completed so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// The current event, computed from the wall clock.
    pub fn event(&self) -> ProgressEvent {
        let elapsed = self.started.elapsed().as_secs_f64();
        let per_sec = if elapsed > 0.0 { self.done as f64 / elapsed } else { 0.0 };
        let remaining = self.total.saturating_sub(self.done);
        let eta_secs =
            if per_sec > 0.0 && self.total > 0 { remaining as f64 / per_sec } else { 0.0 };
        ProgressEvent {
            done: self.done,
            total: self.total,
            elapsed_secs: elapsed,
            per_sec,
            eta_secs,
        }
    }

    /// Records one completion; forwards a [`ProgressEvent`] to `sink`
    /// when the rate limit allows it (always on the final item).
    pub fn tick(&mut self, sink: &mut dyn ProgressSink) {
        self.done += 1;
        let finished = self.total > 0 && self.done >= self.total;
        let due = match self.last_emit {
            None => true,
            Some(at) => at.elapsed() >= self.interval,
        };
        if finished || due {
            self.last_emit = Some(Instant::now());
            sink.progress(&self.event());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_tick_always_emits() {
        // An hour-long interval rate-limits everything except the first
        // tick and the guaranteed final one.
        let mut meter = ProgressMeter::with_interval(5, Duration::from_secs(3600));
        let mut sink = MemoryProgress::default();
        for _ in 0..5 {
            meter.tick(&mut sink);
        }
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].done, 1);
        let last = sink.events.last().unwrap();
        assert_eq!((last.done, last.total), (5, 5));
    }

    #[test]
    fn zero_interval_emits_every_tick_with_monotone_progress() {
        let mut meter = ProgressMeter::with_interval(3, Duration::ZERO);
        let mut sink = MemoryProgress::default();
        for _ in 0..3 {
            meter.tick(&mut sink);
        }
        let dones: Vec<u64> = sink.events.iter().map(|e| e.done).collect();
        assert_eq!(dones, [1, 2, 3]);
        assert!(sink.events.iter().all(|e| e.total == 3));
        assert!(sink.events.windows(2).all(|w| w[1].elapsed_secs >= w[0].elapsed_secs));
    }

    #[test]
    fn render_is_single_line() {
        let e =
            ProgressEvent { done: 3, total: 10, elapsed_secs: 1.5, per_sec: 2.0, eta_secs: 3.5 };
        let line = e.render();
        assert!(!line.contains('\n'));
        assert!(line.contains("3/10"));
        let unknown =
            ProgressEvent { done: 3, total: 0, elapsed_secs: 1.0, per_sec: 3.0, eta_secs: 0.0 };
        assert!(unknown.render().contains("3 cells"));
    }

    #[test]
    fn event_round_trips_through_json() {
        let e = ProgressEvent { done: 1, total: 2, elapsed_secs: 0.5, per_sec: 2.0, eta_secs: 0.5 };
        let back: ProgressEvent =
            serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
        assert_eq!(back, e);
    }
}
