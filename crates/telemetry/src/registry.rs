//! The enabled [`Telemetry`] implementation: a shared, internally
//! synchronized metrics registry.

use crate::histogram::Log2Histogram;
use crate::hooks::Telemetry;
use crate::snapshot::{
    CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, METRICS_SNAPSHOT_VERSION,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Log2Histogram>,
}

/// A shared metrics registry: the handle every instrumented component
/// records into when telemetry is on.
///
/// Cloning is cheap (an `Arc`), so one registry fans out across worker
/// threads, parallel sweep cells, and connection handlers; recording
/// takes one uncontended mutex lock per observation — acceptable because
/// observations happen per phase / per request / per cell, never per
/// engine step (per-step sections accumulate locally and observe once,
/// see [`timed`](crate::timed)). `BTreeMap` keys keep every snapshot and
/// rendering deterministically name-ordered.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry poisoned");
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The named counter's current value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().expect("registry poisoned").counters.get(name).copied().unwrap_or(0)
    }

    /// A point-in-time serde view of everything recorded so far, sorted
    /// by name. Versioned — see [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            version: METRICS_SNAPSHOT_VERSION,
            counters: inner
                .counters
                .iter()
                .map(|(&name, &value)| CounterSample { name: name.into(), value })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(&name, &value)| GaugeSample { name: name.into(), value })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&name, h)| {
                    let s = h.summary();
                    HistogramSample {
                        name: name.into(),
                        count: s.count,
                        sum: s.sum,
                        max: s.max,
                        p50: s.p50,
                        p90: s.p90,
                        p99: s.p99,
                    }
                })
                .collect(),
        }
    }
}

impl Telemetry for Registry {
    const ENABLED: bool = true;

    fn count(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.inner.lock().expect("registry poisoned").gauges.insert(name, value);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.inner
            .lock()
            .expect("registry poisoned")
            .histograms
            .entry(name)
            .or_default()
            .observe(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_name_order() {
        let r = Registry::new();
        r.count("zeta", 2);
        r.count("alpha", 1);
        r.count("alpha", 4);
        r.gauge("depth", 9);
        r.gauge("depth", 3);
        r.observe("lat_micros", 10);
        r.observe("lat_micros", 1000);
        let snap = r.snapshot();
        assert_eq!(snap.version, METRICS_SNAPSHOT_VERSION);
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"], "snapshots are name-ordered");
        assert_eq!(snap.counters[0].value, 5);
        assert_eq!(snap.gauges[0].value, 3, "gauges are last-write-wins");
        assert_eq!(snap.histograms[0].count, 2);
        assert_eq!(snap.histograms[0].max, 1000);
        assert_eq!(r.counter("alpha"), 5);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn clones_share_the_same_store() {
        let r = Registry::new();
        let r2 = r.clone();
        r2.count("shared", 1);
        assert_eq!(r.counter("shared"), 1);
    }

    #[test]
    fn concurrent_counts_are_not_lost() {
        let r = Registry::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.count("spins", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("spins"), 4000);
    }
}
