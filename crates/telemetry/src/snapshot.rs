//! The versioned serde view of a [`Registry`](crate::Registry) and its
//! Prometheus-style text rendering.

use serde::{Deserialize, Serialize};

/// The snapshot schema version, bumped on any incompatible change to the
/// shapes below. Clients (the `radionet metrics` command, dashboards)
/// check it before interpreting fields.
pub const METRICS_SNAPSHOT_VERSION: u32 = 1;

/// One counter's point-in-time value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// The metric name.
    pub name: String,
    /// The monotone value.
    pub value: u64,
}

/// One gauge's point-in-time value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// The metric name.
    pub name: String,
    /// The last written value.
    pub value: u64,
}

/// One histogram's point-in-time summary (the
/// [`HistogramSummary`](crate::HistogramSummary) fields plus the name,
/// flattened for the wire).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// The metric name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Exact observed maximum.
    pub max: u64,
    /// Upper-bound 50th-percentile estimate.
    pub p50: u64,
    /// Upper-bound 90th-percentile estimate.
    pub p90: u64,
    /// Upper-bound 99th-percentile estimate.
    pub p99: u64,
}

/// A complete, versioned, name-ordered view of one registry — what the
/// radionetd `metrics` protocol command returns.
///
/// Lists of `(name, value)` samples rather than maps: the shape survives
/// any JSON decoder, stays ordered, and adding new sample kinds is a
/// backward-compatible field addition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Schema version ([`METRICS_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Monotone counters, name-ordered.
    pub counters: Vec<CounterSample>,
    /// Last-write-wins gauges, name-ordered.
    pub gauges: Vec<GaugeSample>,
    /// Histogram summaries, name-ordered.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// An empty snapshot at the current schema version.
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot {
            version: METRICS_SNAPSHOT_VERSION,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Appends a counter sample (used by services overlaying their own
    /// counters — e.g. cache statistics — onto a registry snapshot).
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.counters.push(CounterSample { name: name.into(), value });
    }

    /// Appends a gauge sample.
    pub fn push_gauge(&mut self, name: &str, value: u64) {
        self.gauges.push(GaugeSample { name: name.into(), value });
    }

    /// The named counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }
}

/// Renders a snapshot as Prometheus-style text: `# TYPE` comments,
/// `name value` lines for counters and gauges, and
/// `name_count` / `name_sum` / `name_max` plus `quantile`-labelled lines
/// for histogram summaries. Deterministic for a given snapshot.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        out.push_str(&format!("# TYPE {} counter\n{} {}\n", c.name, c.name, c.value));
    }
    for g in &snapshot.gauges {
        out.push_str(&format!("# TYPE {} gauge\n{} {}\n", g.name, g.name, g.value));
    }
    for h in &snapshot.histograms {
        out.push_str(&format!("# TYPE {} summary\n", h.name));
        out.push_str(&format!("{}{{quantile=\"0.5\"}} {}\n", h.name, h.p50));
        out.push_str(&format!("{}{{quantile=\"0.9\"}} {}\n", h.name, h.p90));
        out.push_str(&format!("{}{{quantile=\"0.99\"}} {}\n", h.name, h.p99));
        out.push_str(&format!("{}_max {}\n", h.name, h.max));
        out.push_str(&format!("{}_sum {}\n", h.name, h.sum));
        out.push_str(&format!("{}_count {}\n", h.name, h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::empty();
        snap.push_counter("cache_hits", 3);
        snap.push_gauge("jobs_live", 1);
        snap.histograms.push(HistogramSample {
            name: "run_micros".into(),
            count: 2,
            sum: 30,
            max: 20,
            p50: 15,
            p90: 20,
            p99: 20,
        });
        snap
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample();
        let line = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&line).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("cache_hits"), Some(3));
        assert_eq!(back.counter("nope"), None);
    }

    #[test]
    fn prometheus_rendering_is_greppable() {
        let text = render_prometheus(&sample());
        assert!(text.contains("# TYPE cache_hits counter\ncache_hits 3\n"));
        assert!(text.contains("# TYPE jobs_live gauge\njobs_live 1\n"));
        assert!(text.contains("run_micros{quantile=\"0.99\"} 20\n"));
        assert!(text.contains("run_micros_count 2\n"));
        assert!(text.contains("run_micros_sum 30\n"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_prometheus(&MetricsSnapshot::empty()), "");
    }
}
