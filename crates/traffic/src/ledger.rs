//! The delivery ledger: folding per-node knowledge back into per-message
//! delivery times and the run's traffic summary.
//!
//! The gossip pipeline records *who learned what when* (each node's known
//! set). The ledger inverts that view: for every planned message it tracks
//! injected-at (from the plan), first-delivered-at (the earliest step any
//! intended recipient learned it) and fully-delivered-at (the step the
//! last intended recipient learned it), then summarizes the run as a
//! [`TrafficReport`] — delivered throughput plus exact nearest-rank
//! latency percentiles via the workspace-shared
//! [`radionet_analysis::percentile`].

use crate::plan::{PlannedMessage, TrafficPlan};
use radionet_analysis::percentile;
use serde::{Deserialize, Serialize};

#[derive(Clone, Copy, Debug)]
struct MsgState {
    /// Intended recipients (destination-set members excluding the source).
    intended: u64,
    /// Distinct intended recipients observed so far.
    heard: u64,
    /// Earliest observation step, if any.
    first: u64,
    /// Latest observation step.
    last: u64,
}

/// Per-run delivery accounting over one [`TrafficPlan`].
///
/// Feed it each node's learned set once per node (the gossip protocol's
/// known list holds each message id at most once, so observations are
/// naturally deduplicated), then call [`report`](DeliveryLedger::report).
#[derive(Clone, Debug)]
pub struct DeliveryLedger {
    messages: Vec<PlannedMessage>,
    state: Vec<MsgState>,
    horizon: u64,
}

impl DeliveryLedger {
    /// Build the ledger for `plan` in an `n`-node network, precomputing
    /// every message's intended-recipient count.
    ///
    /// A message whose destination set is empty after excluding its source
    /// (a salted multicast that drew nobody, or any message with `n = 1`)
    /// counts as delivered at injection time with latency zero — the only
    /// consistent reading of "all intended recipients have it".
    pub fn new(plan: &TrafficPlan, n: u32) -> Self {
        let state = plan
            .messages
            .iter()
            .map(|m| {
                let intended = (0..n).filter(|&i| i != m.src && m.dst.includes(i)).count() as u64;
                MsgState { intended, heard: 0, first: u64::MAX, last: 0 }
            })
            .collect();
        DeliveryLedger { messages: plan.messages.clone(), state, horizon: plan.horizon }
    }

    /// Record that `node` learned message `msg_id` at step `heard_at`.
    ///
    /// Observations from the source node or from nodes outside the
    /// message's destination set are ignored (relays still carry traffic,
    /// they just aren't accountable recipients). Each `(node, msg_id)`
    /// pair must be reported at most once.
    pub fn observe(&mut self, node: u32, msg_id: u64, heard_at: u64) {
        let Some(m) = self.messages.get(msg_id as usize) else { return };
        if node == m.src || !m.dst.includes(node) {
            return;
        }
        let st = &mut self.state[msg_id as usize];
        st.heard += 1;
        st.first = st.first.min(heard_at);
        st.last = st.last.max(heard_at);
    }

    /// Summarize the run. Latency is steps since injection; first-delivery
    /// percentiles cover every message at least one recipient received,
    /// full-delivery percentiles cover fully delivered messages only.
    pub fn report(&self) -> TrafficReport {
        let injected = self.messages.len() as u64;
        let mut first_lat = Vec::new();
        let mut full_lat = Vec::new();
        for (m, st) in self.messages.iter().zip(&self.state) {
            if st.intended == 0 {
                // Vacuously delivered at injection.
                first_lat.push(0);
                full_lat.push(0);
                continue;
            }
            if st.heard > 0 {
                first_lat.push(st.first.saturating_sub(m.at));
            }
            if st.heard == st.intended {
                full_lat.push(st.last.saturating_sub(m.at));
            }
        }
        first_lat.sort_unstable();
        full_lat.sort_unstable();
        let delivered = full_lat.len() as u64;
        TrafficReport {
            injected,
            delivered,
            undelivered: injected - delivered,
            throughput_per_kstep: delivered as f64 * 1000.0 / self.horizon.max(1) as f64,
            first_p50: percentile(&first_lat, 0.50),
            first_p90: percentile(&first_lat, 0.90),
            first_p99: percentile(&first_lat, 0.99),
            full_p50: percentile(&full_lat, 0.50),
            full_p90: percentile(&full_lat, 0.90),
            full_p99: percentile(&full_lat, 0.99),
        }
    }
}

/// The traffic summary of one run — part of the deterministic report
/// surface, so every field is byte-stable across kernels and sweep
/// parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Messages the plan injected.
    pub injected: u64,
    /// Messages every intended recipient received by the horizon.
    pub delivered: u64,
    /// `injected - delivered`.
    pub undelivered: u64,
    /// Fully delivered messages per 1000 steps of horizon.
    pub throughput_per_kstep: f64,
    /// Nearest-rank p50 of first-delivery latency (steps).
    pub first_p50: u64,
    /// Nearest-rank p90 of first-delivery latency (steps).
    pub first_p90: u64,
    /// Nearest-rank p99 of first-delivery latency (steps).
    pub first_p99: u64,
    /// Nearest-rank p50 of full-delivery latency (steps).
    pub full_p50: u64,
    /// Nearest-rank p90 of full-delivery latency (steps).
    pub full_p90: u64,
    /// Nearest-rank p99 of full-delivery latency (steps).
    pub full_p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Dst, MulticastSet};

    fn msg(id: u64, at: u64, src: u32, dst: Dst) -> PlannedMessage {
        PlannedMessage { id, at, src, dst }
    }

    fn plan(messages: Vec<PlannedMessage>, horizon: u64) -> TrafficPlan {
        TrafficPlan { messages, horizon }
    }

    #[test]
    fn unicast_accounting_is_exact() {
        // One message 0 -> 2 injected at step 4 in a 4-node net.
        let p = plan(vec![msg(0, 4, 0, Dst::One(2))], 100);
        let mut led = DeliveryLedger::new(&p, 4);
        led.observe(1, 0, 6); // relay: not accountable
        led.observe(0, 0, 4); // source: ignored
        let r = led.report();
        assert_eq!((r.injected, r.delivered, r.undelivered), (1, 0, 1));
        led.observe(2, 0, 9);
        let r = led.report();
        assert_eq!((r.injected, r.delivered, r.undelivered), (1, 1, 0));
        assert_eq!(r.first_p50, 5);
        assert_eq!(r.full_p99, 5);
        assert!((r.throughput_per_kstep - 10.0).abs() < 1e-12);
    }

    #[test]
    fn flood_needs_every_recipient() {
        let p = plan(vec![msg(0, 0, 1, Dst::All)], 50);
        let mut led = DeliveryLedger::new(&p, 3); // recipients: nodes 0, 2
        led.observe(0, 0, 3);
        let r = led.report();
        assert_eq!(r.delivered, 0);
        assert_eq!(r.first_p50, 3, "first-delivery counts partial messages");
        led.observe(2, 0, 7);
        let r = led.report();
        assert_eq!(r.delivered, 1);
        assert_eq!(r.full_p50, 7);
    }

    #[test]
    fn empty_destination_set_is_vacuously_delivered() {
        let p = plan(vec![msg(0, 5, 0, Dst::Many(MulticastSet { salt: 1, per_mille: 0 }))], 50);
        let led = DeliveryLedger::new(&p, 8);
        let r = led.report();
        assert_eq!((r.delivered, r.undelivered), (1, 0));
        assert_eq!(r.full_p99, 0);
    }

    #[test]
    fn percentiles_over_many_messages() {
        // Ten unicasts all injected at 0, delivered at 1..=10.
        let msgs: Vec<_> = (0..10).map(|i| msg(i, 0, 0, Dst::One(1 + i as u32))).collect();
        let p = plan(msgs, 1000);
        let mut led = DeliveryLedger::new(&p, 12);
        for i in 0..10u64 {
            led.observe(1 + i as u32, i, i + 1);
        }
        let r = led.report();
        assert_eq!(r.delivered, 10);
        assert_eq!(r.full_p50, 5);
        assert_eq!(r.full_p90, 9);
        assert_eq!(r.full_p99, 10);
        assert_eq!(r.first_p50, 5);
        assert!((r.throughput_per_kstep - 10.0).abs() < 1e-12);
    }

    #[test]
    fn report_serde_round_trip() {
        let p = plan(vec![msg(0, 0, 0, Dst::One(1))], 10);
        let mut led = DeliveryLedger::new(&p, 2);
        led.observe(1, 0, 2);
        let r = led.report();
        let json = serde_json::to_string(&r).unwrap();
        let back: TrafficReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
