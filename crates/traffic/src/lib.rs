//! Streaming traffic workloads: many concurrent messages instead of one.
//!
//! Every task the paper benchmarks is one-shot — a single broadcast, one
//! leader election — but the α-parametrized broadcast bounds are exactly
//! the per-message baselines a *stream* of messages should be measured
//! against. This crate provides the three pieces a streaming workload
//! needs, all inside the deterministic surface (a traffic run is a pure
//! function of its spec, byte-identical across kernels and across
//! sequential/parallel sweeps):
//!
//! * [`TrafficSpec`] / [`Arrival`] — the workload axis a
//!   `RunSpec` carries: deterministic arrival processes (Bernoulli-thinned
//!   Poisson and bursty on/off), sender count, message budget, horizon;
//! * [`TrafficPlan`] — the materialized schedule: every message's id,
//!   arrival step, source node and destination set ([`Dst`]: flood,
//!   point-to-point, or salted multicast), convertible into the engine's
//!   [`Injection`](radionet_sim::Injection) list;
//! * [`DeliveryLedger`] — folds per-node knowledge (who learned which
//!   message when) back into per-message injected-at / first-delivered-at
//!   / fully-delivered-at times, and summarizes them as a
//!   [`TrafficReport`]: delivered throughput plus exact nearest-rank
//!   p50/p90/p99 latency percentiles (shared helper:
//!   [`radionet_analysis::percentile`]).
//!
//! All plan randomness derives from one traffic seed via the workspace's
//! standard splitmix64 mix — no RNG state is consumed, so adding traffic
//! to a run perturbs neither the graph nor the simulator's per-node
//! streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ledger;
mod plan;
mod spec;

pub use ledger::{DeliveryLedger, TrafficReport};
pub use plan::{mix64, Dst, MulticastSet, PlannedMessage, TrafficPlan};
pub use spec::{Arrival, BurstyArrival, PoissonArrival, TrafficKind, TrafficSpec};
