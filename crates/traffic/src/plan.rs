//! Materializing a [`TrafficSpec`] into a concrete message schedule.
//!
//! Plan generation is **RNG-free**: every arrival coin, destination draw
//! and multicast salt is a pure [`mix64`] hash of the traffic seed and the
//! (sender, step) or message-id coordinates. That keeps the plan outside
//! the simulator's per-node RNG streams — adding traffic to a run changes
//! neither the graph nor any protocol's random draws — and makes the plan
//! trivially identical across kernels, threads and machines.

use crate::spec::{Arrival, TrafficKind, TrafficSpec};
#[cfg(test)]
use crate::spec::{BurstyArrival, PoissonArrival};
use radionet_sim::Injection;
use serde::{Deserialize, Serialize};

/// Splitmix64-style finalizer — the same bit mixer the API crate's seed
/// derivation uses (duplicated here because the traffic layer sits *below*
/// the API in the dependency graph; `radionet-api` has a pinned-value test
/// guarding the shared constants).
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A salted pseudo-random multicast member set: node `i` is a member iff
/// `mix64(salt ^ i) % 1000 < per_mille`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MulticastSet {
    /// Per-message membership salt.
    pub salt: u64,
    /// Membership density in per-mille.
    pub per_mille: u16,
}

/// A message's intended recipient set, recomputable from the plan alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dst {
    /// Every node (flood/gossip accounting).
    All,
    /// Exactly one destination node (point-to-point).
    One(u32),
    /// A salted pseudo-random member set (see [`MulticastSet`]).
    Many(MulticastSet),
}

impl Dst {
    /// Whether `node` is an intended recipient of a message with this
    /// destination set (the source itself is excluded by the ledger, not
    /// here).
    pub fn includes(&self, node: u32) -> bool {
        match *self {
            Dst::All => true,
            Dst::One(d) => node == d,
            Dst::Many(set) => mix64(set.salt ^ u64::from(node)) % 1000 < u64::from(set.per_mille),
        }
    }
}

/// One scheduled message: the unit the delivery ledger accounts for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlannedMessage {
    /// Message id — sequential in injection order, and the on-air payload.
    pub id: u64,
    /// Step the message enters its source node's outbound queue.
    pub at: u64,
    /// Source node.
    pub src: u32,
    /// Intended recipient set.
    pub dst: Dst,
}

/// The fully materialized schedule for one run: every message's id,
/// arrival step, source and destination set, in injection order.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficPlan {
    /// Messages sorted by `(at, src)`; ids are the vector indices.
    pub messages: Vec<PlannedMessage>,
    /// Phase length the plan was built for.
    pub horizon: u64,
}

impl TrafficPlan {
    /// Materialize `spec` for an `n`-node run from the traffic seed.
    ///
    /// Senders are strided evenly across the node range. Arrival coins are
    /// evaluated step-outer / sender-inner, so the message list is born
    /// sorted by `(at, src)` and ids are assigned in that order; the
    /// `spec.messages` budget truncates the tail deterministically.
    pub fn build(spec: &TrafficSpec, kind: TrafficKind, n: u32, seed: u64) -> TrafficPlan {
        assert!(n > 0, "traffic plan needs at least one node");
        let senders = spec.senders.clamp(1, n);
        let stride = (n / senders).max(1);
        let cap = spec.messages as usize;
        let horizon = u64::from(spec.horizon);

        let (per_10k, cycle_on, cycle_len) = match spec.arrival {
            Arrival::Poisson(p) => (u64::from(p.per_10k), 1u64, 1u64),
            Arrival::Bursty(b) => {
                let on = u64::from(b.on);
                (u64::from(b.per_10k), on, on + u64::from(b.off))
            }
        };

        // Arrivals stop at the horizon midpoint: the second half of the
        // phase is the *drain window*, where in-flight messages finish
        // propagating. Messages the drain could not flush are the
        // `undelivered` count — injecting right up to the horizon would
        // make full delivery structurally impossible.
        let arrival_window = horizon.div_ceil(2);
        let mut messages = Vec::new();
        'gen: for t in 0..arrival_window {
            if t % cycle_len >= cycle_on {
                continue; // silent part of the burst cycle
            }
            for s in 0..senders {
                let coin = mix64(seed ^ ((u64::from(s) + 1) << 32 | t));
                if coin % 10_000 >= per_10k {
                    continue;
                }
                let id = messages.len() as u64;
                let src = (s * stride) % n;
                let dst = match kind {
                    TrafficKind::Gossip => Dst::All,
                    TrafficKind::Unicast => {
                        // A mix-drawn destination, nudged off the source
                        // (with n = 1 the nudge wraps back — degenerate
                        // but well-defined).
                        let d = (mix64(seed ^ (0xd5_7000 + id)) % u64::from(n)) as u32;
                        Dst::One(if d == src { (d + 1) % n } else { d })
                    }
                    TrafficKind::Multicast => Dst::Many(MulticastSet {
                        salt: mix64(seed ^ (0x5a_1700 + id)),
                        per_mille: spec.multicast_per_mille,
                    }),
                };
                messages.push(PlannedMessage { id, at: t, src, dst });
                if messages.len() == cap {
                    break 'gen;
                }
            }
        }
        TrafficPlan { messages, horizon }
    }

    /// The plan as the engine's injection list (already `at`-ordered; the
    /// payload is the message id).
    pub fn injections(&self) -> Vec<Injection<u64>> {
        self.messages.iter().map(|m| Injection { at: m.at, node: m.src, msg: m.id }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use radionet_sim::injections_ordered;

    fn spec(arrival: Arrival) -> TrafficSpec {
        TrafficSpec { arrival, ..TrafficSpec::default() }
    }

    #[test]
    fn deterministic_and_sorted() {
        let s = spec(Arrival::Poisson(PoissonArrival { per_10k: 400 }));
        let a = TrafficPlan::build(&s, TrafficKind::Gossip, 100, 7);
        let b = TrafficPlan::build(&s, TrafficKind::Gossip, 100, 7);
        assert_eq!(a, b);
        assert!(!a.messages.is_empty(), "0.4%/step × 8 senders × 512 steps should arrive");
        assert!(injections_ordered(&a.injections()));
        for (i, m) in a.messages.iter().enumerate() {
            assert_eq!(m.id, i as u64, "ids are injection-order indices");
            assert!(m.at < a.horizon.div_ceil(2), "arrival inside the drain window");
            assert!(m.src < 100);
        }
        let c = TrafficPlan::build(&s, TrafficKind::Gossip, 100, 8);
        assert_ne!(a, c, "plan must depend on the seed");
    }

    #[test]
    fn message_budget_truncates() {
        let mut s = spec(Arrival::Poisson(PoissonArrival { per_10k: 10_000 }));
        s.messages = 5;
        let p = TrafficPlan::build(&s, TrafficKind::Gossip, 64, 3);
        assert_eq!(p.messages.len(), 5);
        // Certain arrivals: all five land at step 0 on distinct senders.
        assert!(p.messages.iter().all(|m| m.at == 0));
    }

    #[test]
    fn bursty_respects_off_windows() {
        let mut s = spec(Arrival::Bursty(BurstyArrival { on: 4, off: 12, per_10k: 10_000 }));
        s.messages = 10_000;
        let p = TrafficPlan::build(&s, TrafficKind::Gossip, 64, 11);
        assert!(!p.messages.is_empty());
        for m in &p.messages {
            assert!(m.at % 16 < 4, "arrival at {} is inside an off window", m.at);
        }
    }

    #[test]
    fn unicast_never_targets_the_source() {
        let s = spec(Arrival::Poisson(PoissonArrival { per_10k: 2_000 }));
        let p = TrafficPlan::build(&s, TrafficKind::Unicast, 17, 99);
        assert!(!p.messages.is_empty());
        for m in &p.messages {
            match m.dst {
                Dst::One(d) => {
                    assert_ne!(d, m.src);
                    assert!(d < 17);
                    assert!(m.dst.includes(d));
                    assert!(!m.dst.includes(m.src));
                }
                _ => panic!("unicast plan produced a non-unicast dst"),
            }
        }
    }

    #[test]
    fn multicast_membership_is_recomputable_and_plausible() {
        let mut s = spec(Arrival::Poisson(PoissonArrival { per_10k: 2_000 }));
        s.multicast_per_mille = 250;
        let p = TrafficPlan::build(&s, TrafficKind::Multicast, 1000, 5);
        assert!(!p.messages.is_empty());
        let m = &p.messages[0];
        let members: Vec<u32> = (0..1000).filter(|&i| m.dst.includes(i)).collect();
        // 250‰ of 1000 nodes: the salted set should land in a wide band.
        assert!(members.len() > 150 && members.len() < 350, "{} members", members.len());
        // Recomputation is exact.
        let again: Vec<u32> = (0..1000).filter(|&i| m.dst.includes(i)).collect();
        assert_eq!(members, again);
    }

    proptest! {
        #[test]
        fn plans_are_well_formed(
            seed in any::<u64>(),
            n in 1u32..200,
            senders in 1u32..32,
            per_10k in 1u16..10_000,
            horizon in 1u32..300,
        ) {
            let s = TrafficSpec {
                arrival: Arrival::Poisson(PoissonArrival { per_10k }),
                senders,
                messages: 64,
                horizon,
                multicast_per_mille: 250,
            };
            for kind in [TrafficKind::Gossip, TrafficKind::Unicast, TrafficKind::Multicast] {
                let p = TrafficPlan::build(&s, kind, n, seed);
                prop_assert!(p.messages.len() <= 64);
                prop_assert!(injections_ordered(&p.injections()));
                for (i, m) in p.messages.iter().enumerate() {
                    prop_assert_eq!(m.id, i as u64);
                    prop_assert!(m.src < n);
                    prop_assert!(m.at < u64::from(horizon));
                }
            }
        }
    }
}
