//! The spec-level traffic axis: what a `RunSpec` pins about its workload.

use serde::{Deserialize, Serialize};

/// Parameters of the memoryless arrival coin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoissonArrival {
    /// Per-sender per-step arrival probability in basis points.
    pub per_10k: u16,
}

/// Parameters of the on/off burst cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BurstyArrival {
    /// Steps per cycle with arrivals enabled.
    pub on: u16,
    /// Silent steps per cycle.
    pub off: u16,
    /// In-burst arrival probability in basis points.
    pub per_10k: u16,
}

/// A deterministic arrival process, evaluated independently per sender and
/// per step from the traffic seed alone (integer arithmetic only — no
/// float thresholds, no RNG state).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arrival {
    /// Bernoulli-thinned Poisson: every sender injects at every step
    /// independently with probability `per_10k / 10_000` (the discrete
    /// memoryless process; inter-arrival gaps are geometric).
    Poisson(PoissonArrival),
    /// Bursty on/off: the Poisson coin runs only during the first `on`
    /// steps of every `on + off` cycle (cycles are phase-aligned across
    /// senders, so bursts collide — the hard case for the channel).
    Bursty(BurstyArrival),
}

/// What counts as "delivered" for a message — the task family member.
/// The gossip pipeline floods every message identically; the kind decides
/// which nodes the [`DeliveryLedger`](crate::DeliveryLedger) holds the
/// message accountable to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficKind {
    /// Flood/gossip: every node is an intended recipient.
    Gossip,
    /// Point-to-point: one drawn destination per message.
    Unicast,
    /// Multicast: a salted pseudo-random member set per message (density
    /// set by [`TrafficSpec::multicast_per_mille`]).
    Multicast,
}

impl TrafficKind {
    /// The registry key suffix (`traffic.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            TrafficKind::Gossip => "gossip",
            TrafficKind::Unicast => "unicast",
            TrafficKind::Multicast => "multicast",
        }
    }
}

/// The traffic axis of a run spec: everything the arrival plan derives
/// from, beyond the cell seed. Integer-only so spec hashing is trivially
/// canonical.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// The arrival process every sender runs.
    pub arrival: Arrival,
    /// How many sender nodes inject traffic (strided across the node
    /// range; clamped to `n`).
    pub senders: u32,
    /// Cap on total injected messages (arrivals beyond it are dropped
    /// from the plan, keeping ledger memory bounded).
    pub messages: u32,
    /// Phase length in steps. Arrivals run over the first half (the
    /// second half is the drain window, where in-flight messages finish
    /// propagating); undelivered messages are counted, not waited for.
    pub horizon: u32,
    /// Multicast membership density in per-mille (only read by
    /// [`TrafficKind::Multicast`]).
    pub multicast_per_mille: u16,
}

impl Default for TrafficSpec {
    /// A CI-sized default: 8 senders, a 0.4% per-step arrival coin, at
    /// most 64 messages over a 512-step horizon, 250‰ multicast sets.
    fn default() -> Self {
        TrafficSpec {
            arrival: Arrival::Poisson(PoissonArrival { per_10k: 40 }),
            senders: 8,
            messages: 64,
            horizon: 512,
            multicast_per_mille: 250,
        }
    }
}

impl TrafficSpec {
    /// Basic sanity: at least one sender, one message, one step, and a
    /// non-trivial multicast density when one is set.
    pub fn validate(&self) -> Result<(), String> {
        if self.senders == 0 {
            return Err("traffic.senders must be at least 1".into());
        }
        if self.messages == 0 {
            return Err("traffic.messages must be at least 1".into());
        }
        if self.horizon == 0 {
            return Err("traffic.horizon must be at least 1".into());
        }
        if self.multicast_per_mille > 1000 {
            return Err("traffic.multicast_per_mille must be <= 1000".into());
        }
        let per_10k = match self.arrival {
            Arrival::Poisson(p) => p.per_10k,
            Arrival::Bursty(b) => {
                if b.on == 0 {
                    return Err("traffic bursty arrival needs on >= 1".into());
                }
                // b.off == 0 degenerates to Poisson — allowed.
                b.per_10k
            }
        };
        if per_10k == 0 || per_10k > 10_000 {
            return Err("traffic arrival per_10k must be in 1..=10000".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(TrafficSpec::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_axes() {
        let broken = [
            TrafficSpec { senders: 0, ..TrafficSpec::default() },
            TrafficSpec { messages: 0, ..TrafficSpec::default() },
            TrafficSpec { horizon: 0, ..TrafficSpec::default() },
            TrafficSpec { multicast_per_mille: 1001, ..TrafficSpec::default() },
            TrafficSpec {
                arrival: Arrival::Poisson(PoissonArrival { per_10k: 0 }),
                ..TrafficSpec::default()
            },
            TrafficSpec {
                arrival: Arrival::Bursty(BurstyArrival { on: 0, off: 4, per_10k: 100 }),
                ..TrafficSpec::default()
            },
        ];
        for s in broken {
            assert!(s.validate().is_err(), "{s:?} must be rejected");
        }
    }

    #[test]
    fn serde_round_trip() {
        let s = TrafficSpec {
            arrival: Arrival::Bursty(BurstyArrival { on: 8, off: 56, per_10k: 1200 }),
            senders: 16,
            messages: 128,
            horizon: 1024,
            multicast_per_mille: 125,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: TrafficSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn kind_names() {
        assert_eq!(TrafficKind::Gossip.name(), "gossip");
        assert_eq!(TrafficKind::Unicast.name(), "unicast");
        assert_eq!(TrafficKind::Multicast.name(), "multicast");
    }
}
