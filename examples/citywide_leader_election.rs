//! Leader election across a citywide ad-hoc network (geometric radio
//! network with heterogeneous transmit powers).
//!
//! ```sh
//! cargo run --release --example citywide_leader_election
//! ```
//!
//! Compares the paper's Algorithm 3 (`Compete(C)` over the elected MIS
//! clusterings, Theorem 8) against the folklore candidate+flood baseline on
//! the *undirected geometric radio network* class from Section 1.3: nodes
//! have ranges in `[r, 2r]` and an edge requires mutual reachability.

use radionet::baselines::naive_le::{run_naive_leader_election, NaiveLeConfig};
use radionet::core::leader_election::{run_leader_election, LeaderElectionConfig};
use radionet::graph::generators;
use radionet::graph::traversal::is_connected;
use radionet::sim::{NetInfo, Sim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    // 400 vehicles/basestations in a 9×9 km city; powers differ by up to 2×.
    let (g, info) = loop {
        let pts = generators::uniform_points2(400, 9.0, &mut rng);
        let ranges = generators::geometric::uniform_ranges(400, 0.9, 1.8, &mut rng);
        let inst = generators::geometric_radio_undirected(&pts, &ranges);
        if is_connected(&inst.graph) {
            let info = NetInfo::exact(&inst.graph);
            break (inst.graph, info);
        }
    };
    println!(
        "city network: n = {}, m = {}, D = {}, α ≈ {:.0} (growth-bounded: α = poly(D))",
        g.n(),
        g.m(),
        info.d,
        info.alpha
    );

    // Paper, Algorithm 3.
    let mut sim = Sim::new(&g, info, 12);
    let ours = run_leader_election(&mut sim, 77, &LeaderElectionConfig::default());
    println!();
    println!("compete-based election (Theorem 8):");
    println!("  candidates: {}", ours.candidate_count());
    println!("  succeeded: {}", ours.succeeded());
    if let Some(t) = ours.compete.clock_all_informed {
        println!("  agreement reached at time-step {t}");
    }

    // Baseline.
    let mut sim = Sim::new(&g, info, 12);
    let base = run_naive_leader_election(&mut sim, 77, &NaiveLeConfig::default());
    println!();
    println!("naive candidate+flood baseline:");
    println!("  candidates: {}", base.candidate_ids.iter().flatten().count());
    println!("  succeeded: {}", base.succeeded());
    if let Some(t) = base.flood.clock_all_informed {
        println!("  agreement reached at time-step {t}");
    }

    println!();
    println!(
        "note: at this scale the baseline's D·log n is small; the paper's \
         advantage is asymptotic in D (see EXPERIMENTS.md, E8/E9)"
    );
}
