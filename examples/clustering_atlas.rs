//! Atlas of MPX clusterings: how `Partition(β, MIS)` behaves across graph
//! families and scales — the geometric heart of the paper (Theorem 2).
//!
//! ```sh
//! cargo run --release --example clustering_atlas
//! ```
//!
//! For each family and each scale `β = 2^{-j}`, prints cluster count, mean
//! distance to center, and radius — for MIS centers (this paper) and
//! all-node centers ([CD21]) side by side. Watch `mean·β` track `log_D α`
//! for MIS centers on the geometric families.

use radionet::analysis::Table;
use radionet::cluster::mpx::partition;
use radionet::graph::families::Family;
use radionet::graph::independent_set::greedy_mis_min_degree;
use radionet::graph::traversal::diameter;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut table = Table::new([
        "family",
        "n",
        "D",
        "beta",
        "centers",
        "clusters",
        "mean dist",
        "radius",
        "mean*beta",
    ]);
    for family in [Family::UnitDisk, Family::Grid, Family::Gnp, Family::Spider] {
        let g = family.instantiate(1024, 1);
        let d = diameter(&g);
        let mis = greedy_mis_min_degree(&g);
        let all: Vec<_> = g.nodes().collect();
        for j in 1..=3 {
            let beta = 2f64.powi(-j);
            for (label, centers) in [("mis", &mis), ("all", &all)] {
                let c = partition(&g, centers, beta, &mut rng);
                table.row([
                    family.name().to_string(),
                    g.n().to_string(),
                    d.to_string(),
                    format!("1/{}", 1 << j),
                    label.to_string(),
                    c.cluster_count().to_string(),
                    format!("{:.2}", c.mean_dist()),
                    c.radius().to_string(),
                    format!("{:.2}", c.mean_dist() * beta),
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!(
        "MIS centers give fewer, flatter clusters at the same β — the mechanism behind\n\
         the paper's O(D·log_D α) broadcast (Theorem 2; experiment E5)."
    );
}
