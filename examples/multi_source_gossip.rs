//! Multi-source competition: the full generality of `Compete(S)`.
//!
//! ```sh
//! cargo run --release --example multi_source_gossip
//! ```
//!
//! `Compete(S)` is defined for any candidate set `S` holding messages — the
//! lexicographically highest one wins everywhere (paper, Section 2.1). This
//! example plants rumors at several nodes of a quasi unit disk graph and
//! shows the override dynamics that both broadcasting (|S| = 1) and leader
//! election (|S| = Θ(log n)) specialize.

use radionet::core::compete::{run_compete, CompeteConfig};
use radionet::graph::generators;
use radionet::graph::traversal::is_connected;
use radionet::sim::{NetInfo, Sim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(64);
    let g = loop {
        let inst = generators::quasi_unit_disk_in_square(350, 8.0, 0.6, 1.2, 0.5, &mut rng);
        if is_connected(&inst.graph) {
            break inst.graph;
        }
    };
    let info = NetInfo::exact(&g);
    println!(
        "quasi unit disk network: n = {}, m = {}, D = {}, α ≈ {:.0}",
        g.n(),
        g.m(),
        info.d,
        info.alpha
    );

    // Five rumor sources with distinct priorities.
    let sources = [(0usize, 100u64), (70, 250), (140, 50), (210, 900), (280, 400)];
    let mut initial = vec![None; g.n()];
    for &(v, msg) in &sources {
        initial[v] = Some(msg);
    }
    println!("\nsources: {sources:?}");
    println!("expected winner: 900 (the highest message overrides all others)");

    let mut sim = Sim::new(&g, info, 3);
    let out = run_compete(&mut sim, &initial, &CompeteConfig::default());

    let winners = out.best.iter().filter(|b| **b == Some(900)).count();
    println!("\nnodes knowing the winning rumor: {winners}/{}", g.n());
    if let Some(t) = out.clock_all_informed {
        println!("network-wide agreement at time-step {t}");
    }
    println!(
        "setup {} steps, {} propagation rounds over {} fine clusterings",
        out.clock_setup, out.rounds_run, out.fine_count
    );
    assert!(out.all_know(900), "competition must converge to the maximum");
}
