//! Quickstart: broadcast a message through a unit disk graph.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a random sensor deployment (unit disk graph), runs the paper's
//! `Compete({s})` broadcast (Theorem 7), and prints what happened.

use radionet::core::broadcast::run_broadcast;
use radionet::core::compete::CompeteConfig;
use radionet::graph::generators;
use radionet::graph::traversal::is_connected;
use radionet::sim::{NetInfo, Sim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 300 radios dropped uniformly in a 7×7 km square, 1 km radio range.
    let mut rng = StdRng::seed_from_u64(2023);
    let instance = generators::unit_disk_in_square(300, 7.0, &mut rng);
    let g = &instance.graph;
    assert!(is_connected(g), "deployment happens to be connected for this seed");

    let info = NetInfo::exact(g);
    println!("deployment: n = {}, m = {}, D = {}, α ≈ {:.0}", g.n(), g.m(), info.d, info.alpha);
    println!(
        "the paper's bound: O(D·log_D α + polylog n) with log_D α = {:.2} (vs log_D n = {:.2})",
        info.log_d_alpha(),
        info.log_d_n()
    );

    let mut sim = Sim::new(g, info, 7);
    let source = g.node(0);
    let outcome = run_broadcast(&mut sim, source, 0xC0FFEE, &CompeteConfig::default());

    println!();
    if outcome.completed() {
        println!(
            "broadcast completed: every node knows the message after {} time-steps",
            outcome.completion_time().expect("completed")
        );
        println!("  setup (MIS + clusterings + schedules): {} steps", outcome.compete.clock_setup);
        println!("  MIS valid: {:?}", outcome.compete.mis_valid);
        println!("  fine clusterings used: {}", outcome.compete.fine_count);
        println!("  propagation rounds: {}", outcome.compete.rounds_run);
    } else {
        let informed = outcome.compete.best.iter().filter(|b| b.is_some()).count();
        println!("broadcast incomplete: {informed}/{} informed", g.n());
    }
    let stats = sim.stats();
    println!();
    println!(
        "engine: {} simulated steps, {} charged steps, {} transmissions, {} deliveries, {} collisions",
        stats.simulated_steps,
        stats.charged_steps,
        stats.transmissions,
        stats.deliveries,
        stats.collisions
    );
}
