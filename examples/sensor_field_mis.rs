//! Cluster-head election in a sensor field via Radio MIS.
//!
//! ```sh
//! cargo run --release --example sensor_field_mis
//! ```
//!
//! A classic use of a maximal independent set in wireless networks: MIS
//! members become *cluster heads* — no two heads interfere (independence)
//! and every sensor has a head in range (maximality). This runs the paper's
//! Algorithm 7, the first MIS algorithm for general-graph radio networks,
//! and verifies both properties.

use radionet::core::mis::{run_radio_mis, MisConfig, MisStatus};
use radionet::graph::generators;
use radionet::graph::independent_set::{greedy_mis_min_degree, is_maximal_independent_set};
use radionet::sim::{NetInfo, Sim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A denser-in-the-middle deployment: two overlapping uniform squares.
    let mut rng = StdRng::seed_from_u64(99);
    let mut pts = generators::uniform_points2(220, 8.0, &mut rng);
    pts.extend(
        generators::uniform_points2(120, 3.0, &mut rng)
            .into_iter()
            .map(|p| radionet::graph::geometry::Point2::new(p.x + 2.5, p.y + 2.5)),
    );
    let instance = generators::unit_disk(&pts);
    let g = &instance.graph;
    let info = NetInfo::exact(g);
    println!(
        "sensor field: n = {}, m = {}, max degree = {}, D = {}",
        g.n(),
        g.m(),
        g.max_degree(),
        info.d
    );

    let mut sim = Sim::new(g, info, 4);
    let outcome = run_radio_mis(&mut sim, &MisConfig::default());
    let heads = outcome.mis_nodes();

    println!();
    println!("radio MIS finished in {} rounds / {} time-steps", outcome.rounds, outcome.steps);
    println!("cluster heads elected: {}", heads.len());
    println!("valid maximal independent set: {}", is_maximal_independent_set(g, &heads));
    let uncovered = g.nodes().filter(|v| outcome.status[v.index()] == MisStatus::Active).count();
    println!("undecided sensors: {uncovered}");

    // Compare against the centralized greedy reference.
    let greedy = greedy_mis_min_degree(g);
    println!();
    println!(
        "centralized greedy reference: {} heads (radio/greedy size ratio {:.2})",
        greedy.len(),
        heads.len() as f64 / greedy.len() as f64
    );
    println!(
        "theory: both are maximal, so each is within a Δ+1 = {} factor of minimum",
        g.max_degree() + 1
    );
}
