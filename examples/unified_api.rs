//! The unified façade in one page: specs in, reports out.
//!
//! ```bash
//! cargo run --release --example unified_api
//! ```
//!
//! Builds one `RunSpec` per registered task, runs them all through
//! `Driver::run_sweep_parallel` with an in-memory sink, and prints a
//! one-line summary per task — no hand-wired `Sim`, no per-algorithm
//! plumbing.

use radionet::api::{Driver, Dynamics, MemorySink, RunSpec};
use radionet::graph::families::Family;
use radionet::sim::ReceptionMode;

fn main() {
    let driver = Driver::standard();

    // One spec per task: a jammed unit-disk deployment of ~256 nodes.
    let specs: Vec<RunSpec> = driver
        .registry()
        .keys()
        .map(|task| {
            let mut spec = RunSpec::new(task, Family::UnitDisk, 256)
                .with_dynamics(Dynamics::preset("jamming").unwrap())
                .with_seed(2026);
            if task == "cd-wakeup" {
                spec = spec.with_reception(ReceptionMode::ProtocolCd);
            }
            spec
        })
        .collect();

    let mut sink = MemorySink::default();
    driver.run_sweep_parallel(&specs, 8, &mut sink).expect("all specs valid");

    println!("{:<22} {:>3}  {:>8}  {:>9}  {:>10}", "task", "ok", "achieved", "clock", "steps");
    for report in &sink.reports {
        println!(
            "{:<22} {:>3}  {:>8.2}  {:>9}  {:>10}",
            report.spec.task,
            if report.success { "yes" } else { "no" },
            report.achieved,
            report.clock_total,
            report.stats.simulated_steps,
        );
    }
}
