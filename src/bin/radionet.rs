//! The `radionet` CLI: the unified façade from the shell.
//!
//! One binary exposes every algorithm in the workspace through the typed
//! [`RunSpec`] surface:
//!
//! ```text
//! radionet run --task broadcast --family grid --n 64 --seed 7
//! radionet run --spec spec.json
//! radionet sweep --sizes 36,64 --seeds 2 --base-seed 1 --out results.jsonl
//! radionet list-tasks
//! radionet catalogue
//! ```
//!
//! `run` prints one [`RunReport`] as JSON; `sweep` expands the named
//! scenario catalogue into specs and streams reports through a
//! [`ResultSink`] (JSONL by default), so arbitrarily large sweeps never
//! buffer in memory.

use radionet::api::{
    replay, Driver, Dynamics, JsonArraySink, JsonlSink, ResultSink, RunReport, RunSpec,
    TaskRegistry,
};
use radionet::graph::families::Family;
use radionet::journal::{bisect, ClassMask, EventKind, Journal};
use radionet::scenario::runner::{spec_for_cell, SweepConfig};
use radionet::scenario::Scenario;
use radionet::service::{cli as service_cli, run_sweep_sharded, ShardMode};
use radionet::sim::{Kernel, ReceptionMode, SinrConfig};
use radionet::telemetry::{ProgressEvent, ProgressMeter, ProgressSink};
use serde::Serialize;
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

/// Exit status when a replay or bisect finds a divergence (distinct from
/// `1`, which means the command itself failed).
const EXIT_DIVERGED: u8 = 3;

const USAGE: &str = "\
radionet — unified CLI over every algorithm in the workspace

USAGE:
  radionet run [OPTIONS]         run one spec, print its RunReport as JSON
  radionet sweep [OPTIONS]       expand the scenario catalogue into specs and stream reports
  radionet replay JOURNAL [OPTS] re-drive a recorded journal, compare event-for-event
  radionet bisect LEFT RIGHT     first divergent event between two recorded journals
  radionet list-tasks [--json]   list the task registry
  radionet catalogue [--cells]   print the named scenario catalogue as JSON
  radionet serve [OPTIONS]       run the radionetd service in the foreground
  radionet submit [OPTIONS]      submit one spec to a running service
  radionet status --id N         query a submitted job's state
  radionet fetch --id N          fetch a finished job (add --report-only for raw bytes)
  radionet call [--addr A]       raw NDJSON protocol passthrough (stdin -> stdout)
  radionet metrics [--addr A]    scrape a running daemon's telemetry snapshot
  radionet help                  this text

RUN OPTIONS:
  --spec FILE|-       read a full RunSpec from a JSON file (or stdin); other
                      spec flags are rejected when --spec is given. Spec
                      JSON uses the typed enum names (\"Grid\", \"Sparse\",
                      {\"Churn\": {..}}) — generate a valid template with
                      `radionet catalogue --cells` or take the `spec` field
                      of any RunReport
  --task KEY          task registry key            [default: broadcast]
  --family NAME       graph family                 [default: grid]
  --n N               requested node count         [default: 64]
  --seed S            cell seed                    [default: 0]
  --reception MODE    protocol | protocol+cd | sinr (physical reception
                      from the family's embedding — or the live moving
                      point set under mobility dynamics; custom SINR
                      physics go through --spec)    [default: protocol]
  --kernel K          sparse | dense | event       [default: sparse]
  --dynamics NAME     static | churn | partition-repair | jamming |
                      staggered-wake | mobility:waypoint | mobility:walk |
                      mobility:levy | mobility:group (standard presets;
                      mobility needs a geometric --family)  [default: static]
  --steps N           optional step-budget cap
  --compact           compact JSON instead of pretty
  --out FILE          write to FILE instead of stdout
  --journal FILE      also record an event journal of the run and write it
                      to FILE as one JSON document (feeds replay/bisect)
  --journal-classes L event classes to record: all | none | comma list of
                      radio,topology,phase,sched   [default: all]
  --checkpoint-every N  waypoint cadence in steps; 0 derives one from the
                      task's timebase              [default: 0]

REPLAY OPTIONS:
  JOURNAL             recorded journal file (\"-\" = stdin)
  --perturb N         corrupt the Nth node-bearing recorded event before
                      comparing (smoke-tests the divergence machinery; the
                      report must pinpoint the injected step)
  --out FILE          also write the fresh replay journal to FILE
  exit status: 0 = streams identical, 3 = divergence found, 1 = error

BISECT OPTIONS:
  LEFT RIGHT          two recorded journal files (\"-\" = stdin, once)
  --classes LIST      classes to compare: all | none | comma list
                      [default: all] (sched is dropped automatically when
                      the journals come from different kernels)
  exit status: 0 = identical on compared classes, 3 = divergent, 1 = error

SWEEP OPTIONS:
  --sizes LIST        comma-separated sizes        [default: 36]
  --seeds K           repetitions per cell         [default: 1]
  --base-seed S       master seed                  [default: 0]
  --scenario NAME     restrict to a named scenario (repeatable)
  --kernel K          sparse | dense | event       [default: sparse]
  --format F          jsonl | json                 [default: jsonl]
  --sequential        one cell at a time (default: rayon chunks; the
                      output stream is byte-identical either way)
  --chunk N           parallel chunk size          [default: 64]
  --shards N          route the sweep through the sharded coordinator with N
                      deterministic shards (output stays byte-identical)
  --shard-exec PATH   shard via spawned `PATH --worker` subprocesses instead
                      of in-process threads (implies the sharded path)
  --progress          live progress line on stderr (done/total, rate, ETA;
                      rate-limited to ~5 updates/sec)
  --progress-jsonl F  append one ProgressEvent JSON line per update to F
  --out FILE          write to FILE instead of stdout

SERVICE COMMANDS:
  serve / submit / status / fetch / call / metrics speak the radionetd NDJSON
  protocol and accept --addr (default 127.0.0.1:7177); `metrics` renders the
  daemon's telemetry snapshot as Prometheus-style text (--json for raw JSON).
  See `radionetd --help`.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd {
        "run" => cmd_run(rest).map(|()| ExitCode::SUCCESS),
        "sweep" => cmd_sweep(rest).map(|()| ExitCode::SUCCESS),
        "replay" => cmd_replay(rest),
        "bisect" => cmd_bisect(rest),
        "list-tasks" => cmd_list_tasks(rest).map(|()| ExitCode::SUCCESS),
        "catalogue" => cmd_catalogue(rest).map(|()| ExitCode::SUCCESS),
        "serve" => service_cli::serve_cmd(rest).map(|()| ExitCode::SUCCESS),
        "submit" => service_cli::submit_cmd(rest).map(|()| ExitCode::SUCCESS),
        "status" => service_cli::status_cmd(rest, false).map(|()| ExitCode::SUCCESS),
        "fetch" => service_cli::status_cmd(rest, true).map(|()| ExitCode::SUCCESS),
        "call" => service_cli::call_cmd(rest).map(|()| ExitCode::SUCCESS),
        "metrics" => service_cli::metrics_cmd(rest).map(|()| ExitCode::SUCCESS),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other:?} (see `radionet help`)")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("radionet {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// A tiny flag cursor over `--key value` / `--switch` argument lists.
struct Args<'a> {
    rest: &'a [String],
    i: usize,
}

impl<'a> Args<'a> {
    fn new(rest: &'a [String]) -> Self {
        Args { rest, i: 0 }
    }

    fn next_flag(&mut self) -> Option<&'a str> {
        let flag = self.rest.get(self.i)?;
        self.i += 1;
        Some(flag.as_str())
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        let v = self.rest.get(self.i).ok_or_else(|| format!("{flag} needs a value"))?;
        self.i += 1;
        Ok(v.as_str())
    }
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag} {value:?}: {e}"))
}

fn parse_family(name: &str) -> Result<Family, String> {
    Family::ALL.into_iter().find(|f| f.name() == name).ok_or_else(|| {
        let all: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        format!("unknown family {name:?}; one of: {}", all.join(", "))
    })
}

fn parse_kernel(name: &str) -> Result<Kernel, String> {
    match name {
        "sparse" => Ok(Kernel::Sparse),
        "dense" => Ok(Kernel::Dense),
        "event" => Ok(Kernel::Event),
        other => Err(format!("unknown kernel {other:?}; sparse, dense or event")),
    }
}

fn parse_reception(name: &str) -> Result<ReceptionMode, String> {
    match name {
        "protocol" => Ok(ReceptionMode::Protocol),
        "protocol+cd" | "cd" => Ok(ReceptionMode::ProtocolCd),
        // Geometry-sourced physical reception: positions come from the
        // family's own embedding (static) or the live moving point set
        // (mobility dynamics) — no hand-shipped coordinates. Custom
        // physics or explicit snapshots go through --spec.
        "sinr" => Ok(ReceptionMode::Sinr(SinrConfig::geometric())),
        other => Err(format!(
            "unknown reception {other:?}; protocol, protocol+cd, or sinr \
             (geometric families; custom SINR configs go through --spec)"
        )),
    }
}

fn parse_sizes(list: &str) -> Result<Vec<usize>, String> {
    list.split(',')
        .map(|s| parse::<usize>("--sizes", s.trim()))
        .collect::<Result<Vec<_>, _>>()
        .and_then(|v| if v.is_empty() { Err("--sizes is empty".into()) } else { Ok(v) })
}

fn open_out(path: Option<&str>) -> Result<Box<dyn Write>, String> {
    match path {
        None | Some("-") => Ok(Box::new(std::io::stdout())),
        Some(p) => {
            let f = std::fs::File::create(p).map_err(|e| format!("cannot create {p}: {e}"))?;
            Ok(Box::new(std::io::BufWriter::new(f)))
        }
    }
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let mut args = Args::new(rest);
    let mut spec_file: Option<String> = None;
    let mut spec = RunSpec::new("broadcast", Family::Grid, 64);
    let mut flag_count = 0usize;
    let mut compact = false;
    let mut out: Option<String> = None;
    let mut journal_out: Option<String> = None;
    let mut journal_classes: Option<String> = None;
    let mut checkpoint_every: Option<u64> = None;
    while let Some(flag) = args.next_flag() {
        match flag {
            "--spec" => spec_file = Some(args.value(flag)?.to_string()),
            "--task" => {
                spec.task = args.value(flag)?.to_string();
                flag_count += 1;
            }
            "--family" => {
                spec.family = parse_family(args.value(flag)?)?;
                flag_count += 1;
            }
            "--n" => {
                spec.n = parse(flag, args.value(flag)?)?;
                flag_count += 1;
            }
            "--seed" => {
                spec.seed = parse(flag, args.value(flag)?)?;
                flag_count += 1;
            }
            "--reception" => {
                spec.reception = parse_reception(args.value(flag)?)?;
                flag_count += 1;
            }
            "--kernel" => {
                spec.kernel = parse_kernel(args.value(flag)?)?;
                flag_count += 1;
            }
            "--dynamics" => {
                let name = args.value(flag)?;
                spec.dynamics =
                    Dynamics::preset(name).ok_or_else(|| format!("unknown dynamics {name:?}"))?;
                flag_count += 1;
            }
            "--steps" => {
                spec.steps = Some(parse(flag, args.value(flag)?)?);
                flag_count += 1;
            }
            "--compact" => compact = true,
            "--out" => out = Some(args.value(flag)?.to_string()),
            // Journal flags are output/observability controls, not spec
            // axes, so they compose with --spec (flag_count untouched).
            "--journal" => journal_out = Some(args.value(flag)?.to_string()),
            "--journal-classes" => journal_classes = Some(args.value(flag)?.to_string()),
            "--checkpoint-every" => checkpoint_every = Some(parse(flag, args.value(flag)?)?),
            other => return Err(format!("unknown flag {other:?} (see `radionet help`)")),
        }
    }
    if journal_out.is_none() && (journal_classes.is_some() || checkpoint_every.is_some()) {
        return Err("--journal-classes / --checkpoint-every need --journal FILE".into());
    }
    if let Some(path) = spec_file {
        if flag_count > 0 {
            return Err("--spec replaces the whole spec; drop the other spec flags".into());
        }
        let json = if path == "-" {
            std::io::read_to_string(std::io::stdin()).map_err(|e| e.to_string())?
        } else {
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?
        };
        spec = serde_json::from_str(&json).map_err(|e| format!("bad spec in {path}: {e}"))?;
    }
    let report = match &journal_out {
        None => Driver::standard().run(&spec).map_err(|e| e.to_string())?,
        Some(jpath) => {
            // Flags refine the spec's own journal section (if any): a
            // spec-file recipe can carry its filter, the command line wins.
            let mut jspec = spec.journal.clone().unwrap_or_default();
            if let Some(classes) = journal_classes {
                jspec.classes = classes;
            }
            if let Some(every) = checkpoint_every {
                jspec.checkpoint_every = every;
            }
            spec.journal = Some(jspec);
            let (report, journal) =
                Driver::standard().run_journaled(&spec).map_err(|e| e.to_string())?;
            let doc = journal.to_json_string().map_err(|e| e.to_string())?;
            let mut jw = open_out(Some(jpath))?;
            writeln!(jw, "{doc}").and_then(|()| jw.flush()).map_err(|e| e.to_string())?;
            report
        }
    };
    if report.stats.kernel_fallbacks > 0 {
        // Never silent: the run asked for the sparse or event kernel but
        // (some of) its phases executed a slower one.
        eprintln!(
            "warning: {} phase(s) fell back to a slower kernel \
             (the topology view lacks a change feed or event-jump support); \
             see stats.kernel_fallbacks",
            report.stats.kernel_fallbacks
        );
    }
    let rendered = render(&report, compact)?;
    let mut w = open_out(out.as_deref())?;
    writeln!(w, "{rendered}").and_then(|()| w.flush()).map_err(|e| e.to_string())
}

fn cmd_sweep(rest: &[String]) -> Result<(), String> {
    let mut args = Args::new(rest);
    let mut sizes = vec![36usize];
    let mut seeds = 1u64;
    let mut base_seed = 0u64;
    let mut names: Vec<String> = Vec::new();
    let mut kernel = Kernel::default();
    let mut format = "jsonl".to_string();
    let mut sequential = false;
    let mut chunk = 64usize;
    let mut shards = 1usize;
    let mut shard_exec: Option<String> = None;
    let mut progress = false;
    let mut progress_jsonl: Option<String> = None;
    let mut out: Option<String> = None;
    while let Some(flag) = args.next_flag() {
        match flag {
            "--sizes" => sizes = parse_sizes(args.value(flag)?)?,
            "--seeds" => seeds = parse(flag, args.value(flag)?)?,
            "--base-seed" => base_seed = parse(flag, args.value(flag)?)?,
            "--scenario" => names.push(args.value(flag)?.to_string()),
            "--kernel" => kernel = parse_kernel(args.value(flag)?)?,
            "--format" => format = args.value(flag)?.to_string(),
            "--sequential" => sequential = true,
            "--chunk" => chunk = parse(flag, args.value(flag)?)?,
            "--shards" => shards = parse(flag, args.value(flag)?)?,
            "--shard-exec" => shard_exec = Some(args.value(flag)?.to_string()),
            "--progress" => progress = true,
            "--progress-jsonl" => progress_jsonl = Some(args.value(flag)?.to_string()),
            "--out" => out = Some(args.value(flag)?.to_string()),
            other => return Err(format!("unknown flag {other:?} (see `radionet help`)")),
        }
    }

    // Where `--progress` / `--progress-jsonl` events land: a `\r`-rewritten
    // stderr line and/or a JSON line per event. Progress is observability,
    // never control flow, so the writes are best-effort.
    struct ProgressWriter {
        stderr: bool,
        jsonl: Option<std::io::BufWriter<std::fs::File>>,
    }
    impl ProgressSink for ProgressWriter {
        fn progress(&mut self, event: &ProgressEvent) {
            if self.stderr {
                eprint!("\r{}", event.render());
                if event.total > 0 && event.done >= event.total {
                    eprintln!();
                }
            }
            if let Some(w) = &mut self.jsonl {
                if let Ok(line) = serde_json::to_string(event) {
                    let _ = writeln!(w, "{line}");
                    let _ = w.flush();
                }
            }
        }
    }

    // Delegating sink that tallies kernel fallbacks across the sweep so a
    // silently-degraded cell is reported on stderr, matching `run`'s
    // warning (the counts also sit in every cell's stats.kernel_fallbacks),
    // and ticks the optional progress meter — reports stream through here
    // in deterministic cell order on one thread, whichever execution path
    // produced them.
    struct FallbackTally<'a> {
        inner: &'a mut dyn ResultSink,
        fallbacks: u64,
        cells: u64,
        /// Streaming-traffic cells seen, their injected/delivered message
        /// totals and summed delivered throughput — the sweep-level view
        /// of the delivery pipeline for the summary line.
        traffic_cells: u64,
        traffic_injected: u64,
        traffic_delivered: u64,
        traffic_thpt: f64,
        progress: Option<(ProgressMeter, ProgressWriter)>,
    }
    impl ResultSink for FallbackTally<'_> {
        fn emit(&mut self, report: &RunReport) -> std::io::Result<()> {
            if report.stats.kernel_fallbacks > 0 {
                self.fallbacks += report.stats.kernel_fallbacks;
                self.cells += 1;
            }
            if let Some(t) = &report.traffic {
                self.traffic_cells += 1;
                self.traffic_injected += t.injected;
                self.traffic_delivered += t.delivered;
                self.traffic_thpt += t.throughput_per_kstep;
            }
            if let Some((meter, writer)) = &mut self.progress {
                meter.tick(writer);
            }
            self.inner.emit(report)
        }
        fn finish(&mut self) -> std::io::Result<()> {
            self.inner.finish()
        }
    }

    let mut scenarios = Scenario::extended_catalogue();
    if !names.is_empty() {
        for name in &names {
            if !scenarios.iter().any(|s| &s.name == name) {
                let known: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
                return Err(format!("unknown scenario {name:?}; one of: {}", known.join(", ")));
            }
        }
        scenarios.retain(|s| names.contains(&s.name));
    }
    let config = SweepConfig { scenarios, sizes, seeds, base_seed };

    let w = open_out(out.as_deref())?;
    let mut sink: Box<dyn ResultSink> = match format.as_str() {
        "jsonl" => Box::new(JsonlSink::new(w)),
        "json" => Box::new(JsonArraySink::new(w)),
        other => return Err(format!("unknown format {other:?}; jsonl or json")),
    };
    let driver = Driver::standard();
    let meter = (progress || progress_jsonl.is_some()).then(|| {
        let total = (config.scenarios.len() * config.sizes.len()) as u64 * config.seeds;
        let jsonl = progress_jsonl.as_deref().map(|p| {
            std::fs::File::create(p)
                .map(std::io::BufWriter::new)
                .map_err(|e| format!("cannot create {p}: {e}"))
        });
        let jsonl = match jsonl {
            None => None,
            Some(Ok(w)) => Some(w),
            Some(Err(e)) => return Err(e),
        };
        Ok((ProgressMeter::new(total), ProgressWriter { stderr: progress, jsonl }))
    });
    let meter = meter.transpose()?;
    let sweep_started = Instant::now();
    let mut tally = FallbackTally {
        inner: sink.as_mut(),
        fallbacks: 0,
        cells: 0,
        traffic_cells: 0,
        traffic_injected: 0,
        traffic_delivered: 0,
        traffic_thpt: 0.0,
        progress: meter,
    };
    let emitted = if shards > 1 || shard_exec.is_some() {
        // The sharded coordinator partitions by cell position, so it needs
        // the whole spec list up front (O(cells) memory — the trade for
        // multi-worker execution); the merged stream stays byte-identical.
        let specs: Vec<RunSpec> =
            config.cells_iter().map(|cell| spec_for_cell(&cell, kernel)).collect();
        let mode = match shard_exec {
            Some(exe) => ShardMode::Subprocess { exe: exe.into() },
            None => ShardMode::InProcess,
        };
        run_sweep_sharded(&driver, &specs, shards, &mode, &mut tally).map_err(|e| e.to_string())?
    } else {
        // Cells are generated lazily and specs exist only chunk-at-a-time,
        // so the sweep's memory footprint is O(chunk) regardless of size.
        let specs = config.cells_iter().map(|cell| spec_for_cell(&cell, kernel));
        driver
            .run_sweep_streaming(specs, if sequential { 1 } else { chunk }, &mut tally)
            .map_err(|e| e.to_string())?
    };
    if tally.fallbacks > 0 {
        eprintln!(
            "warning: {} phase(s) across {} cell(s) fell back to a slower kernel \
             (topology views without a change feed or event-jump support); \
             see stats.kernel_fallbacks",
            tally.fallbacks, tally.cells
        );
    }
    // The one-line sweep summary (always, progress or not): how much work,
    // how fast, and whether anything degraded. Cache hits only exist on
    // service-served sweeps — the direct driver has no cache — so this
    // line reports fallbacks and leaves hit rates to `radionet metrics`.
    let wall = sweep_started.elapsed().as_secs_f64();
    let rate = if wall > 0.0 { emitted as f64 / wall } else { 0.0 };
    eprintln!(
        "swept {emitted} cells in {wall:.2}s ({rate:.1} cells/s), {} kernel fallback(s)",
        tally.fallbacks
    );
    // Streaming-traffic cells get their own line: how much of the
    // injected workload was fully delivered and the mean delivered
    // throughput across the traffic cells (absent when nothing in the
    // sweep carried traffic).
    if tally.traffic_cells > 0 {
        eprintln!(
            "traffic: {} cell(s), {}/{} message(s) fully delivered, \
             mean {:.1} delivered/kstep",
            tally.traffic_cells,
            tally.traffic_delivered,
            tally.traffic_injected,
            tally.traffic_thpt / tally.traffic_cells as f64,
        );
    }
    Ok(())
}

fn load_journal(path: &str) -> Result<Journal, String> {
    let json = if path == "-" {
        std::io::read_to_string(std::io::stdin()).map_err(|e| e.to_string())?
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    Journal::from_json_str(&json).map_err(|e| format!("bad journal in {path}: {e}"))
}

/// Bumps the node of the `idx`-th node-bearing recorded event (the
/// `--perturb` smoke hook), returning the step it corrupted.
fn perturb_event(journal: &mut Journal, idx: usize) -> Result<u64, String> {
    let mut seen = 0usize;
    for e in &mut journal.events {
        if e.kind.node().is_none() {
            continue;
        }
        if seen == idx {
            e.kind = match e.kind {
                EventKind::Transmit(mut i) => {
                    i.node += 1;
                    EventKind::Transmit(i)
                }
                EventKind::Deliver(mut i) => {
                    i.node += 1;
                    EventKind::Deliver(i)
                }
                EventKind::Collision(mut i) => {
                    i.node += 1;
                    EventKind::Collision(i)
                }
                EventKind::Status(mut i) => {
                    i.node += 1;
                    EventKind::Status(i)
                }
                EventKind::Hint(mut i) => {
                    i.node += 1;
                    EventKind::Hint(i)
                }
                other => other,
            };
            return Ok(e.step);
        }
        seen += 1;
    }
    Err(format!("--perturb {idx}: the journal has only {seen} node-bearing events"))
}

fn cmd_replay(rest: &[String]) -> Result<ExitCode, String> {
    let mut args = Args::new(rest);
    let mut path: Option<String> = None;
    let mut perturb: Option<usize> = None;
    let mut out: Option<String> = None;
    while let Some(flag) = args.next_flag() {
        match flag {
            "--perturb" => perturb = Some(parse(flag, args.value(flag)?)?),
            "--out" => out = Some(args.value(flag)?.to_string()),
            positional if !positional.starts_with("--") && path.is_none() => {
                path = Some(positional.to_string());
            }
            other => return Err(format!("unknown flag {other:?} (see `radionet help`)")),
        }
    }
    let path = path.ok_or("replay needs a JOURNAL file (see `radionet help`)")?;
    let mut recorded = load_journal(&path)?;
    if let Some(idx) = perturb {
        let step = perturb_event(&mut recorded, idx)?;
        eprintln!("perturbed node-bearing event {idx} at step {step}");
    }
    let outcome = replay(&Driver::standard(), &recorded).map_err(|e| e.to_string())?;
    if let Some(path) = out {
        let doc = outcome.replayed.to_json_string().map_err(|e| e.to_string())?;
        let mut w = open_out(Some(&path))?;
        writeln!(w, "{doc}").and_then(|()| w.flush()).map_err(|e| e.to_string())?;
    }
    println!("{}", outcome.comparison);
    if outcome.matches() {
        println!(
            "replay reproduced the recording: {} events, fingerprint {:#018x}",
            outcome.replayed.events.len(),
            outcome.replayed.final_fingerprint
        );
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(EXIT_DIVERGED))
    }
}

fn cmd_bisect(rest: &[String]) -> Result<ExitCode, String> {
    let mut args = Args::new(rest);
    let mut paths: Vec<String> = Vec::new();
    let mut classes = ClassMask::ALL;
    while let Some(flag) = args.next_flag() {
        match flag {
            "--classes" => classes = ClassMask::parse(args.value(flag)?)?,
            positional if !positional.starts_with("--") && paths.len() < 2 => {
                paths.push(positional.to_string());
            }
            other => return Err(format!("unknown flag {other:?} (see `radionet help`)")),
        }
    }
    let [left, right]: [String; 2] = paths
        .try_into()
        .map_err(|_| "bisect needs LEFT and RIGHT journal files (see `radionet help`)")?;
    let report = bisect(&load_journal(&left)?, &load_journal(&right)?, classes);
    println!("{report}");
    if report.is_divergent() {
        Ok(ExitCode::from(EXIT_DIVERGED))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

#[derive(Serialize)]
struct TaskRow {
    key: String,
    description: String,
}

fn cmd_list_tasks(rest: &[String]) -> Result<(), String> {
    let as_json = match rest {
        [] => false,
        [flag] if flag == "--json" => true,
        _ => return Err("list-tasks takes only --json".into()),
    };
    let registry = TaskRegistry::standard();
    if as_json {
        let rows: Vec<TaskRow> = registry
            .iter()
            .map(|t| TaskRow { key: t.key().to_string(), description: t.describe().to_string() })
            .collect();
        println!("{}", serde_json::to_string_pretty(&rows).map_err(|e| e.to_string())?);
    } else {
        let width = registry.keys().map(str::len).max().unwrap_or(0);
        for task in registry.iter() {
            println!("{:width$}  {}", task.key(), task.describe());
        }
    }
    Ok(())
}

fn cmd_catalogue(rest: &[String]) -> Result<(), String> {
    match rest {
        [] => {
            let cat = Scenario::extended_catalogue();
            println!("{}", serde_json::to_string_pretty(&cat).map_err(|e| e.to_string())?);
            Ok(())
        }
        [flag] if flag == "--cells" => {
            // The catalogue expanded at the default sweep shape, as specs.
            let config = SweepConfig::catalogue(vec![36], 1, 0);
            let specs: Vec<RunSpec> =
                config.cells().iter().map(|c| spec_for_cell(c, Kernel::default())).collect();
            println!("{}", serde_json::to_string_pretty(&specs).map_err(|e| e.to_string())?);
            Ok(())
        }
        _ => Err("catalogue takes only --cells".into()),
    }
}

fn render(report: &RunReport, compact: bool) -> Result<String, String> {
    if compact {
        serde_json::to_string(report).map_err(|e| e.to_string())
    } else {
        serde_json::to_string_pretty(report).map_err(|e| e.to_string())
    }
}
