//! # radionet
//!
//! Facade crate re-exporting the full `radionet` workspace: a reproduction of
//! *“Uniting General-Graph and Geometric-Based Radio Networks via
//! Independence Number Parametrization”* (Peter Davies, PODC 2023).
//!
//! See the workspace README for an overview; the typical imports are:
//!
//! ```
//! use radionet::graph::generators;
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let g = generators::unit_disk_in_square(100, 3.0, &mut rng).graph;
//! assert_eq!(g.n(), 100);
//! ```

#![forbid(unsafe_code)]

pub use radionet_analysis as analysis;
pub use radionet_api as api;
pub use radionet_baselines as baselines;
pub use radionet_cluster as cluster;
pub use radionet_core as core;
pub use radionet_graph as graph;
pub use radionet_journal as journal;
pub use radionet_mobility as mobility;
pub use radionet_primitives as primitives;
pub use radionet_scenario as scenario;
pub use radionet_service as service;
pub use radionet_sim as sim;
pub use radionet_telemetry as telemetry;
