//! Cross-crate end-to-end tests: the full paper pipeline on every graph
//! family the harness knows.

use radionet::baselines::bgi::{run_bgi_broadcast, BgiConfig};
use radionet::core::broadcast::run_broadcast;
use radionet::core::compete::CompeteConfig;
use radionet::core::leader_election::{run_leader_election, LeaderElectionConfig};
use radionet::core::mis::{run_radio_mis, MisConfig};
use radionet::graph::families::Family;
use radionet::sim::{NetInfo, Sim};

fn small(family: Family) -> (radionet::graph::Graph, NetInfo) {
    let g = family.instantiate(48, 5);
    let info = NetInfo::exact(&g);
    (g, info)
}

#[test]
fn broadcast_completes_on_every_family() {
    for family in Family::ALL {
        let (g, info) = small(family);
        let mut sim = Sim::new(&g, info, 21);
        let out = run_broadcast(&mut sim, g.node(0), 7, &CompeteConfig::default());
        assert!(
            out.completed(),
            "{family}: {}/{} informed",
            out.compete.best.iter().filter(|b| b.is_some()).count(),
            g.n()
        );
    }
}

#[test]
fn bgi_and_compete_agree_on_message() {
    for family in [Family::Grid, Family::UnitDisk, Family::Gnp] {
        let (g, info) = small(family);
        let mut sim = Sim::new(&g, info, 3);
        let a = run_broadcast(&mut sim, g.node(0), 99, &CompeteConfig::default());
        let mut sim = Sim::new(&g, info, 3);
        let b = run_bgi_broadcast(&mut sim, g.node(0), 99, &BgiConfig::default());
        assert!(a.completed() && b.completed(), "{family}");
        assert_eq!(a.compete.best, b.best, "{family}: different final knowledge");
    }
}

#[test]
fn radio_mis_valid_on_every_family() {
    for family in Family::ALL {
        let (g, info) = small(family);
        let mut sim = Sim::new(&g, info, 13);
        let out = run_radio_mis(&mut sim, &MisConfig::default());
        assert!(out.is_valid(&g), "{family}: invalid MIS");
    }
}

#[test]
fn leader_election_succeeds_on_core_families() {
    for family in [Family::Grid, Family::UnitDisk, Family::Cycle, Family::Spider] {
        let g = family.instantiate(64, 9);
        let info = NetInfo::exact(&g);
        let mut sim = Sim::new(&g, info, 17);
        let out = run_leader_election(&mut sim, 17, &LeaderElectionConfig::default());
        assert!(out.succeeded(), "{family}: election failed");
    }
}

#[test]
fn compete_beats_budget_on_growth_bounded() {
    // Corollary 9 sanity: completion within the configured
    // O(D log_D α + polylog) budget on a growth-bounded instance.
    let g = Family::UnitDisk.instantiate(96, 3);
    let info = NetInfo::exact(&g);
    let config = CompeteConfig::default();
    let mut sim = Sim::new(&g, info, 5);
    let out = run_broadcast(&mut sim, g.node(0), 5, &config);
    assert!(out.completed());
    let t = out.completion_time().unwrap() as f64;
    let l = info.log_n() as f64;
    let bound = config.budget_factor * info.d as f64 * info.log_d_alpha()
        + config.budget_polylog_factor * l * l * l
        + out.compete.clock_setup as f64;
    assert!(t <= bound, "time {t} exceeds budget {bound}");
}

#[test]
fn deterministic_end_to_end() {
    let g = Family::Grid.instantiate(49, 2);
    let info = NetInfo::exact(&g);
    let run = |seed: u64| {
        let mut sim = Sim::new(&g, info, seed);
        let out = run_broadcast(&mut sim, g.node(0), 7, &CompeteConfig::default());
        (out.completion_time(), out.compete.best.clone())
    };
    assert_eq!(run(77), run(77));
}
