//! Property tests of the radio-model invariants across crates: the engine's
//! reception rule against a brute-force reference, partition laws, schedule
//! conflict-freeness on random clusterings.

use proptest::prelude::*;
use radionet::cluster::mpx;
use radionet::cluster::ClusterSchedule;
use radionet::graph::independent_set::greedy_mis_min_degree;
use radionet::graph::{Graph, GraphBuilder};
use radionet::sim::{Action, NetInfo, NodeCtx, Protocol, Sim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (3usize..24, proptest::collection::vec((0usize..24, 0usize..24), 0..60)).prop_map(
        |(n, pairs)| {
            let mut b = GraphBuilder::new(n);
            // Spanning path guarantees connectivity.
            for i in 1..n {
                b.add_edge(i - 1, i);
            }
            for (u, v) in pairs {
                let (u, v) = (u % n, v % n);
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        },
    )
}

/// A protocol with a fixed transmit pattern, recording receptions.
struct Scripted {
    transmit_steps: Vec<bool>,
    heard: Vec<(u64, u32)>,
    id: u32,
}

impl Protocol for Scripted {
    type Msg = u32;
    fn act(&mut self, ctx: &mut NodeCtx<'_>) -> Action<u32> {
        if self.transmit_steps.get(ctx.time as usize).copied().unwrap_or(false) {
            Action::Transmit(self.id)
        } else {
            Action::Listen
        }
    }
    fn on_hear(&mut self, ctx: &mut NodeCtx<'_>, msg: &u32) {
        self.heard.push((ctx.time, *msg));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine delivers exactly when the model says: listener hears msg
    /// at step t iff exactly one neighbor transmitted at t.
    #[test]
    fn reception_matches_bruteforce(
        g in arb_connected_graph(),
        patterns in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 6), 24),
    ) {
        let steps = 6u64;
        let info = NetInfo { n: g.n(), d: 4, alpha: 4.0 };
        let mut sim = Sim::new(&g, info, 0);
        let mut states: Vec<Scripted> = g
            .nodes()
            .map(|v| Scripted {
                transmit_steps: patterns
                    .get(v.index())
                    .cloned()
                    .unwrap_or_else(|| vec![false; steps as usize]),
                heard: Vec::new(),
                id: v.index() as u32,
            })
            .collect();
        sim.run_phase(&mut states, steps);
        for v in g.nodes() {
            for t in 0..steps {
                let tx_neighbors: Vec<u32> = g
                    .neighbors(v)
                    .iter()
                    .filter(|u| {
                        patterns
                            .get(u.index())
                            .map(|p| p[t as usize])
                            .unwrap_or(false)
                    })
                    .map(|u| u.index() as u32)
                    .collect();
                let self_tx = patterns
                    .get(v.index())
                    .map(|p| p[t as usize])
                    .unwrap_or(false);
                let expected = (!self_tx && tx_neighbors.len() == 1)
                    .then(|| tx_neighbors[0]);
                let actual = states[v.index()]
                    .heard
                    .iter()
                    .find(|(ht, _)| *ht == t)
                    .map(|(_, m)| *m);
                prop_assert_eq!(
                    actual, expected,
                    "node {} step {}: {:?} vs {:?}", v.index(), t, actual, expected
                );
            }
        }
    }

    /// Abstract partition over any maximal independent set is a partition
    /// whose clusters are non-empty stars around their centers.
    #[test]
    fn partition_laws(g in arb_connected_graph(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mis = greedy_mis_min_degree(&g);
        let c = mpx::partition(&g, &mis, 0.5, &mut rng);
        prop_assert!(c.validate(&g));
        // Connected graph + maximal-independent centers: everyone clustered.
        prop_assert!(c.cluster_of.iter().all(|x| x.is_some()));
        // MIS centers ⇒ every node within 1 of SOME center, so its own
        // center is within 1 + δ of it; radius is certainly ≤ n.
        prop_assert!((c.radius() as usize) <= g.n());
    }

    /// Cluster schedules built on random clusterings verify conflict-free.
    #[test]
    fn schedules_conflict_free(g in arb_connected_graph(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mis = greedy_mis_min_degree(&g);
        let c = mpx::partition(&g, &mis, 0.3, &mut rng);
        let s = ClusterSchedule::build(&g, &c);
        prop_assert!(s.verify(&g));
    }
}
