//! Robustness and failure-injection tests: estimate slack, disconnected
//! inputs, exhausted budgets, adversarial seeds.

use radionet::core::broadcast::run_broadcast;
use radionet::core::compete::CompeteConfig;
use radionet::core::mis::{run_radio_mis, MisConfig};
use radionet::graph::families::Family;
use radionet::graph::Graph;
use radionet::sim::{CostModel, NetInfo, Sim};

#[test]
fn estimate_slack_tolerated() {
    // The ad-hoc model only promises linear upper estimates of n and D and
    // a polynomial approximation of α; double everything and the pipeline
    // must still work (paper, Section 1.1).
    let g = Family::Grid.instantiate(49, 3);
    let info = NetInfo::with_slack(&g, 2.0);
    let mut sim = Sim::new(&g, info, 9);
    let out = run_broadcast(&mut sim, g.node(0), 5, &CompeteConfig::default());
    assert!(out.completed(), "slack-2 estimates broke broadcast");

    let mut sim = Sim::new(&g, info, 10);
    let mis = run_radio_mis(&mut sim, &MisConfig::default());
    assert!(mis.is_valid(&g), "slack-2 estimates broke MIS");
}

#[test]
fn mis_works_disconnected() {
    // MIS is a local problem: no connectivity needed (paper, Section 1.2).
    let mut edges = Vec::new();
    // Three components: a triangle, an edge, an isolated node.
    edges.extend([(0, 1), (1, 2), (2, 0), (3, 4)]);
    let g = Graph::from_edges(6, edges).unwrap();
    let info = NetInfo { n: 6, d: 2, alpha: 3.0 };
    let mut sim = Sim::new(&g, info, 4);
    let out = run_radio_mis(&mut sim, &MisConfig::default());
    assert!(out.is_valid(&g));
    // The isolated node must be in the MIS.
    assert!(out.mis_flags()[5]);
}

#[test]
fn tiny_graphs() {
    for n in [4usize, 5, 6] {
        let g = Family::Path.instantiate(n, 0);
        let info = NetInfo::exact(&g);
        let mut sim = Sim::new(&g, info, 2);
        let out = run_broadcast(&mut sim, g.node(0), 1, &CompeteConfig::default());
        assert!(out.completed(), "path of {n}");
    }
}

#[test]
fn free_cost_model_still_correct() {
    // Disabling charged costs only changes accounting, not behavior.
    let g = Family::UnitDisk.instantiate(48, 7);
    let info = NetInfo::exact(&g);
    let config = CompeteConfig { cost: CostModel::free(), ..CompeteConfig::default() };
    let mut sim = Sim::new(&g, info, 3);
    let out = run_broadcast(&mut sim, g.node(0), 2, &config);
    assert!(out.completed());
    assert_eq!(sim.stats().charged_steps, 0);
}

#[test]
fn starved_budget_reports_incomplete() {
    // A propagation budget of ~zero cannot inform a long path; the outcome
    // must say so rather than lie.
    let g = Family::Path.instantiate(96, 0);
    let info = NetInfo::exact(&g);
    let config = CompeteConfig {
        budget_factor: 0.0,
        budget_polylog_factor: 0.0,
        sequence_exp: 0.0, // 4 rounds minimum
        ..CompeteConfig::default()
    };
    let mut sim = Sim::new(&g, info, 3);
    let out = run_broadcast(&mut sim, g.node(95), 2, &config);
    assert!(!out.completed());
    assert!(out.completion_time().is_none());
}

#[test]
fn many_seeds_broadcast_whp() {
    // "whp" sanity: 20 independent seeds on one instance, all complete.
    let g = Family::Grid.instantiate(36, 1);
    let info = NetInfo::exact(&g);
    let mut failures = 0;
    for seed in 0..20u64 {
        let mut sim = Sim::new(&g, info, seed);
        let out = run_broadcast(&mut sim, g.node(0), 3, &CompeteConfig::default());
        if !out.completed() {
            failures += 1;
        }
    }
    assert_eq!(failures, 0, "{failures}/20 broadcasts failed");
}

#[test]
fn many_seeds_mis_whp() {
    let g = Family::Gnp.instantiate(64, 2);
    let info = NetInfo::exact(&g);
    let mut failures = 0;
    for seed in 0..20u64 {
        let mut sim = Sim::new(&g, info, seed);
        if !run_radio_mis(&mut sim, &MisConfig::default()).is_valid(&g) {
            failures += 1;
        }
    }
    assert_eq!(failures, 0, "{failures}/20 MIS runs invalid");
}
