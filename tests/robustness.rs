//! Robustness and failure-injection tests: estimate slack, disconnected
//! inputs, exhausted budgets, adversarial seeds, and dynamic topologies.

use radionet::core::broadcast::run_broadcast;
use radionet::core::compete::CompeteConfig;
use radionet::core::mis::{run_radio_mis, MisConfig};
use radionet::graph::families::Family;
use radionet::graph::Graph;
use radionet::scenario::{DynamicTopology, EventKind, ScenarioEvent};
use radionet::sim::{CostModel, NetInfo, ReceptionMode, Sim};

#[test]
fn estimate_slack_tolerated() {
    // The ad-hoc model only promises linear upper estimates of n and D and
    // a polynomial approximation of α; double everything and the pipeline
    // must still work (paper, Section 1.1).
    let g = Family::Grid.instantiate(49, 3);
    let info = NetInfo::with_slack(&g, 2.0);
    let mut sim = Sim::new(&g, info, 9);
    let out = run_broadcast(&mut sim, g.node(0), 5, &CompeteConfig::default());
    assert!(out.completed(), "slack-2 estimates broke broadcast");

    let mut sim = Sim::new(&g, info, 10);
    let mis = run_radio_mis(&mut sim, &MisConfig::default());
    assert!(mis.is_valid(&g), "slack-2 estimates broke MIS");
}

#[test]
fn mis_works_disconnected() {
    // MIS is a local problem: no connectivity needed (paper, Section 1.2).
    let mut edges = Vec::new();
    // Three components: a triangle, an edge, an isolated node.
    edges.extend([(0, 1), (1, 2), (2, 0), (3, 4)]);
    let g = Graph::from_edges(6, edges).unwrap();
    let info = NetInfo { n: 6, d: 2, alpha: 3.0 };
    let mut sim = Sim::new(&g, info, 4);
    let out = run_radio_mis(&mut sim, &MisConfig::default());
    assert!(out.is_valid(&g));
    // The isolated node must be in the MIS.
    assert!(out.mis_flags()[5]);
}

#[test]
fn tiny_graphs() {
    for n in [4usize, 5, 6] {
        let g = Family::Path.instantiate(n, 0);
        let info = NetInfo::exact(&g);
        let mut sim = Sim::new(&g, info, 2);
        let out = run_broadcast(&mut sim, g.node(0), 1, &CompeteConfig::default());
        assert!(out.completed(), "path of {n}");
    }
}

#[test]
fn free_cost_model_still_correct() {
    // Disabling charged costs only changes accounting, not behavior.
    let g = Family::UnitDisk.instantiate(48, 7);
    let info = NetInfo::exact(&g);
    let config = CompeteConfig { cost: CostModel::free(), ..CompeteConfig::default() };
    let mut sim = Sim::new(&g, info, 3);
    let out = run_broadcast(&mut sim, g.node(0), 2, &config);
    assert!(out.completed());
    assert_eq!(sim.stats().charged_steps, 0);
}

#[test]
fn starved_budget_reports_incomplete() {
    // A propagation budget of ~zero cannot inform a long path; the outcome
    // must say so rather than lie.
    let g = Family::Path.instantiate(96, 0);
    let info = NetInfo::exact(&g);
    let config = CompeteConfig {
        budget_factor: 0.0,
        budget_polylog_factor: 0.0,
        sequence_exp: 0.0, // 4 rounds minimum
        ..CompeteConfig::default()
    };
    let mut sim = Sim::new(&g, info, 3);
    let out = run_broadcast(&mut sim, g.node(95), 2, &config);
    assert!(!out.completed());
    assert!(out.completion_time().is_none());
}

#[test]
fn partition_then_repair_broadcast_completes() {
    // End-to-end dynamic-network scenario: the grid splits into two halves
    // before the run makes progress, heals mid-run, and broadcast must
    // still complete — the recovery guarantee the scenario subsystem
    // exists to measure. The run is also a pure function of the seed: two
    // executions must agree step-for-step.
    let g = Family::Grid.instantiate(49, 5);
    let info = NetInfo::exact(&g);
    let script = vec![
        ScenarioEvent::new(100, EventKind::Partition(2)),
        ScenarioEvent::new(3500, EventKind::Heal),
    ];
    let run = |seed: u64| {
        let topo = DynamicTopology::new(&g, script.clone());
        let mut sim = Sim::with_topology(&g, topo, info, seed, ReceptionMode::Protocol);
        let out = run_broadcast(&mut sim, g.node(0), 9, &CompeteConfig::default());
        (out.completed(), out.completion_time(), sim.stats().simulated_steps)
    };
    let (completed, informed_at, steps) = run(21);
    assert!(completed, "broadcast did not recover after the repair");
    let informed_at = informed_at.expect("completed runs report an informed time");
    assert!(informed_at > 3500, "cannot finish while the cut is open");

    let (c2, t2, s2) = run(21);
    assert!(c2);
    assert_eq!(t2, Some(informed_at), "informed time not deterministic");
    assert_eq!(s2, steps, "step count not deterministic for a fixed seed");

    let (_, t3, _) = run(22);
    assert_ne!(t3, Some(informed_at), "different seeds should differ");
}

#[test]
fn crashed_half_defeats_broadcast_without_repair() {
    // Control for the test above: a partition that never heals must leave
    // the far block uninformed (the engine cannot leak messages across a
    // cut).
    let g = Family::Grid.instantiate(36, 2);
    let info = NetInfo::exact(&g);
    let script = vec![ScenarioEvent::new(0, EventKind::Partition(2))];
    let topo = DynamicTopology::new(&g, script);
    let mut sim = Sim::with_topology(&g, topo, info, 4, ReceptionMode::Protocol);
    let out = run_broadcast(&mut sim, g.node(0), 9, &CompeteConfig::default());
    assert!(!out.completed(), "a permanent cut must not be crossed");
    let informed = out.compete.best.iter().filter(|b| **b == Some(9)).count();
    assert!(informed < g.n(), "some node past the cut stayed uninformed");
    assert!(informed > 0, "the source's own block must still be informed");
}

#[test]
fn many_seeds_broadcast_whp() {
    // "whp" sanity: 20 independent seeds on one instance, all complete.
    let g = Family::Grid.instantiate(36, 1);
    let info = NetInfo::exact(&g);
    let mut failures = 0;
    for seed in 0..20u64 {
        let mut sim = Sim::new(&g, info, seed);
        let out = run_broadcast(&mut sim, g.node(0), 3, &CompeteConfig::default());
        if !out.completed() {
            failures += 1;
        }
    }
    assert_eq!(failures, 0, "{failures}/20 broadcasts failed");
}

#[test]
fn many_seeds_mis_whp() {
    let g = Family::Gnp.instantiate(64, 2);
    let info = NetInfo::exact(&g);
    let mut failures = 0;
    for seed in 0..20u64 {
        let mut sim = Sim::new(&g, info, seed);
        if !run_radio_mis(&mut sim, &MisConfig::default()).is_valid(&g) {
            failures += 1;
        }
    }
    assert_eq!(failures, 0, "{failures}/20 MIS runs invalid");
}
