//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface the workspace's benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`] — and reports honest wall-clock mean/min per
//! iteration to stdout. There is no statistics engine, HTML report, or
//! baseline comparison; the numbers are real timings, the presentation is a
//! single line per benchmark.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 100 }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` and prints one result line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b =
            Bencher { samples: Vec::with_capacity(self.sample_size), target: self.sample_size };
        f(&mut b);
        let label = if self.name.is_empty() { id } else { format!("{}/{}", self.name, id) };
        report(&label, &b.samples);
        self
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {label:<40} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Per-benchmark timing driver.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

/// How batched inputs are sized (accepted for API compatibility; every
/// batch here is one input).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

impl Bencher {
    /// Times `target` runs of `f` (one warm-up first).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 6); // warm-up + 5 samples
    }

    #[test]
    fn iter_batched_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut setups = 0usize;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 5);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(15)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(15)).ends_with(" s"));
    }
}
