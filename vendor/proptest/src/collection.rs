//! Collection strategies: `vec` and `btree_map`.

use crate::{Strategy, TestRng};
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

/// A collection-size specification (fixed or ranged).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.next_usize(self.lo..self.hi + 1)
        }
    }
}

/// A strategy for `Vec<S::Value>` with a size in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeMap`s with `size` entries drawn from the key and
/// value strategies (duplicate keys collapse, as upstream).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size: size.into() }
}

/// See [`btree_map`].
#[derive(Clone, Debug)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::deterministic("vec", 0);
        let ranged = vec(0u32..10, 1..5);
        let fixed = vec(0u32..10, 7usize);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert_eq!(fixed.generate(&mut rng).len(), 7);
        }
    }

    #[test]
    fn btree_map_entries() {
        let mut rng = TestRng::deterministic("map", 0);
        let s = btree_map(0u32..50, 0.0f64..1.0, 0..8);
        for _ in 0..100 {
            let m = s.generate(&mut rng);
            assert!(m.len() < 8);
            assert!(m.values().all(|v| (0.0..1.0).contains(v)));
        }
    }
}
