//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`Strategy`] with `prop_map` / `prop_flat_map`, ranges / tuples / regex
//! string literals as strategies, `any::<T>()`, and
//! [`collection::vec`] / [`collection::btree_map`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** Every case is a deterministic function of the test's
//!   module path, name, and case index, so a failure reproduces exactly on
//!   re-run; the failing `assert!` message plus determinism replace minimal
//!   counterexamples.
//! * String strategies accept the regex subset actually used in this
//!   workspace: literals, `[...]` classes with ranges, and `{m}` / `{m,n}`
//!   repetition.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod strategy;

pub use strategy::{Any, FlatMap, Just, Map, Strategy};

/// The deterministic per-case random source handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// The generator for case `case` of the test identified by `name`
    /// (module path + function name).
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    pub(crate) fn next_f64(&mut self) -> f64 {
        self.0.gen()
    }

    pub(crate) fn next_usize(&mut self, range: Range<usize>) -> usize {
        self.0.gen_range(range)
    }
}

/// Runner configuration (`cases` only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count, honoring a `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Marker returned by [`prop_assume!`] rejections: the case is skipped.
#[derive(Clone, Copy, Debug)]
pub struct TestCaseSkip;

/// A strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values spanning many magnitudes (no NaN/inf, as most
    /// proptest consumers immediately filter them).
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mag = rng.next_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

/// The usual glob import: macros, [`Strategy`], [`any`], config.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseSkip, TestRng,
    };
}

// ---- Range and literal strategies ----------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// `&str` strategies are regex patterns (subset: literals, classes,
/// `{m}` / `{m,n}` repetition).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class or a literal char.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            assert!(
                !"\\^$.|?*+()".contains(c),
                "unsupported regex syntax {c:?} in pattern {pattern:?}"
            );
            i += 1;
            vec![c]
        };
        // Optional repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repeat in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("bad repeat count"),
                    b.trim().parse::<usize>().expect("bad repeat count"),
                ),
                None => {
                    let m = body.trim().parse::<usize>().expect("bad repeat count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let count = if lo == hi { lo } else { rng.next_usize(lo..hi + 1) };
        for _ in 0..count {
            out.push(class[rng.next_usize(0..class.len())]);
        }
    }
    out
}

// ---- Macros ---------------------------------------------------------------

/// The property-test macro: each `fn name(x in strategy, ...)` body runs for
/// `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.resolved_cases() {
                    let mut __rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseSkip> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    let _ = __outcome;
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseSkip);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng() {
        let mut a = TestRng::deterministic("x::y", 3);
        let mut b = TestRng::deterministic("x::y", 3);
        let mut c = TestRng::deterministic("x::y", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn pattern_strategies() {
        let mut rng = TestRng::deterministic("pat", 0);
        for _ in 0..200 {
            let id = Strategy::generate(&"[A-Z][0-9]{1,3}", &mut rng);
            assert!((2..=4).contains(&id.len()), "{id}");
            assert!(id.chars().next().unwrap().is_ascii_uppercase());
            assert!(id.chars().skip(1).all(|c| c.is_ascii_digit()));

            let key = Strategy::generate(&"[a-z_]{1,12}", &mut rng);
            assert!((1..=12).contains(&key.len()));
            assert!(key.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn range_strategies_in_bounds() {
        let mut rng = TestRng::deterministic("rng", 1);
        for _ in 0..500 {
            let x = Strategy::generate(&(2usize..40), &mut rng);
            assert!((2..40).contains(&x));
            let y = Strategy::generate(&(-3.0f64..4.0), &mut rng);
            assert!((-3.0..4.0).contains(&y));
            let z = Strategy::generate(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&z));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, tuples work, assume skips.
        #[test]
        fn macro_smoke(n in 2usize..10, pair in (0u32..5, any::<bool>())) {
            prop_assume!(n != 3);
            prop_assert!((2..10).contains(&n));
            prop_assert!(pair.0 < 5);
            prop_assert_eq!(n, n);
        }
    }

    proptest! {
        #[test]
        fn flat_map_dependent_values(pair in (2usize..30).prop_flat_map(|n| {
            collection::vec(0..n, 1..20).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }
}
