//! The [`Strategy`] trait and its combinators.

use crate::{Arbitrary, TestRng};

/// A recipe for producing random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` (dependent
    /// generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, re-drawing up to a bounded
    /// number of times.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 consecutive values", self.whence);
    }
}

/// A strategy producing exactly one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`any`](crate::any).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("combo", 0);
        let s = (1usize..5).prop_map(|x| x * 10).prop_flat_map(|hi| 0usize..hi);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 40);
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::deterministic("filter", 0);
        let s = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
