//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the subset of the `rand 0.8` API that the
//! `radionet` workspace uses: [`Rng`] (`gen`, `gen_bool`, `gen_range`),
//! [`SeedableRng::seed_from_u64`], the [`rngs::SmallRng`] / [`rngs::StdRng`]
//! generators, and [`seq::SliceRandom::shuffle`].
//!
//! Both generators are xoshiro256++ seeded through SplitMix64. The streams
//! therefore differ numerically from upstream `rand`, but every consumer in
//! the workspace only relies on determinism-per-seed and on uniformity, both
//! of which hold.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`next_u64`](RngCore::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the upstream layout).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range from which a uniform value can be drawn.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample(self) < p
    }

    /// A uniform value from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state` (SplitMix64 key expansion, as upstream).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Clone, Debug, PartialEq, Eq)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Xoshiro256pp { s }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256pp};

    /// Small, fast generator (per-node RNGs in the simulator).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256pp);

    impl SmallRng {
        /// The raw xoshiro256++ state words, for checkpointing. A
        /// generator rebuilt with [`SmallRng::from_state`] continues the
        /// exact stream.
        pub fn state(&self) -> [u64; 4] {
            self.0.s
        }

        /// Rebuilds a generator from [`SmallRng::state`] words.
        ///
        /// The all-zero state is a xoshiro fixed point (the stream would
        /// be constant zero); it cannot come from [`SmallRng::state`] of a
        /// seeded generator, and it is rejected here so a corrupted
        /// checkpoint fails loudly instead of silently de-randomizing.
        ///
        /// # Panics
        ///
        /// Panics if `s` is all zeros.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "the all-zero xoshiro state is degenerate");
            SmallRng(Xoshiro256pp { s })
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256pp::seed_from_u64(state))
        }
    }

    /// Non-random generators for tests.
    pub mod mock {
        use crate::RngCore;

        /// A "generator" that counts up from `initial` by `increment`
        /// (upstream rand's test mock).
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct StepRng {
            state: u64,
            increment: u64,
        }

        impl StepRng {
            /// A counter starting at `initial`, advancing by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { state: initial, increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.state;
                self.state = self.state.wrapping_add(self.increment);
                out
            }
        }
    }

    /// The default "statistically strong" generator (graph generation).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256pp);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Domain-separated from SmallRng so the two never share streams.
            StdRng(Xoshiro256pp::seed_from_u64(state ^ 0x51d5_7a6f_8c3b_29e4))
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn streams_domain_separated() {
        let mut small = SmallRng::seed_from_u64(3);
        let mut std = StdRng::seed_from_u64(3);
        assert_ne!(small.gen::<u64>(), std.gen::<u64>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&y));
            let z = rng.gen_range(1.5f64..=2.5);
            assert!((1.5..=2.5).contains(&z));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle left everything in place");
    }
}
