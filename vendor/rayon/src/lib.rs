//! Offline stand-in for `rayon`.
//!
//! Implements the data-parallel subset the workspace uses —
//! `par_iter()` / `into_par_iter()`, [`ParallelIterator::map`],
//! [`ParallelIterator::collect`], and [`current_num_threads`] — over
//! `std::thread::scope`. Work is distributed dynamically (one shared atomic
//! cursor), results are written back by index, and `collect` always yields
//! items in input order, so parallel results are byte-identical to a
//! sequential run of the same closures.
//!
//! `RAYON_NUM_THREADS` is honored exactly as in upstream rayon; `1` gives a
//! fully in-thread execution (useful to compare against the parallel path).

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! The usual glob import.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads a parallel iterator will use.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` over `items` on the worker pool, preserving input order in the
/// output.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    parallel_map_with(items, f, current_num_threads())
}

/// [`parallel_map`] with an explicit worker count (exposed for tests and
/// benchmarks that must exercise the threaded path regardless of the host's
/// CPU budget).
#[doc(hidden)]
pub fn parallel_map_with<T: Send, R: Send>(
    items: Vec<T>,
    f: impl Fn(T) -> R + Sync,
    threads: usize,
) -> Vec<R> {
    let threads = threads.min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    // Dynamic scheduling: workers pull the next unclaimed index. Item
    // ownership moves through per-slot mutexes (the cursor guarantees each
    // slot is taken exactly once; the mutex is what proves it to the
    // borrow checker without unsafe).
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("worker panicked while taking an item")
                    .take()
                    .expect("slot already taken");
                let out = f(item);
                *results[i].lock().expect("worker panicked while storing a result") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker panicked while storing a result")
                .expect("missing parallel result")
        })
        .collect()
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The produced iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// The produced iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Iterates `&self` in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter(self)
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn into_par_iter(self) -> VecParIter<&'a T> {
        VecParIter(self.iter().collect())
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn par_iter(&'a self) -> VecParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn par_iter(&'a self) -> VecParIter<&'a T> {
        self.into_par_iter()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = VecParIter<usize>;
    fn into_par_iter(self) -> VecParIter<usize> {
        VecParIter(self.collect())
    }
}

/// An ordered parallel pipeline.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Materializes the pipeline's results, in input order. (Stub-internal
    /// driver; upstream rayon has no such method.)
    fn run(self) -> Vec<Self::Item>;

    /// Maps every element through `f` on the worker pool.
    fn map<R, F>(self, f: F) -> MapPar<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        MapPar { inner: self, f }
    }

    /// Collects results, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Calls `f` on every element on the worker pool.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.map(f).run();
    }

    /// Sums the elements.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run().into_iter().sum()
    }
}

/// Base iterator over an owned vector.
#[derive(Clone, Debug)]
pub struct VecParIter<T>(Vec<T>);

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.0
    }
}

/// See [`ParallelIterator::map`].
#[derive(Clone, Debug)]
pub struct MapPar<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for MapPar<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        parallel_map(self.inner.run(), self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_map_collect() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<u64> = (0..100).collect();
        let total: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(total, 4950);
        assert_eq!(v.len(), 100); // still usable
    }

    #[test]
    fn matches_sequential_under_one_thread() {
        // The parallel and sequential paths run the same closures on the
        // same items in the same output order, whatever the thread count.
        let input: Vec<u64> = (0..500).collect();
        let seq: Vec<u64> = input.iter().map(|&x| x.wrapping_mul(x)).collect();
        let par: Vec<u64> = input.into_par_iter().map(|x| x.wrapping_mul(x)).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (0..16usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..17).collect::<Vec<_>>());
    }

    #[test]
    fn num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn threaded_path_preserves_order() {
        // Force real worker threads even on a single-CPU host.
        let items: Vec<usize> = (0..257).collect();
        let out = super::parallel_map_with(items, |x| x * 3, 4);
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_path_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        let out = super::parallel_map_with(
            items,
            |x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // Hold the slot long enough that one worker cannot drain
                // the whole queue alone.
                std::thread::sleep(std::time::Duration::from_millis(1));
                x + 1
            },
            4,
        );
        assert_eq!(out.len(), 64);
        assert!(seen.lock().unwrap().len() > 1, "work never left the spawning thread");
    }
}
