//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of serde the workspace relies on: `#[derive(Serialize,
//! Deserialize)]` plus trait impls for the primitive, container, and map
//! types that appear in derived structs. Instead of serde's
//! serializer-visitor data model, both traits go through one self-describing
//! tree type, [`Value`]; `serde_json` prints and parses it. The JSON shapes
//! match upstream serde conventions (structs as objects, unit enum variants
//! as strings, newtype variants as single-key objects) so recorded artifacts
//! stay interchangeable.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized tree (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Non-integral numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order (derived structs keep field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: a path-less, message-only error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A new error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a serialized tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a serialized tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape or range does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: looks up a struct field, erroring on absence.
///
/// # Errors
///
/// Returns [`DeError`] if `key` is missing.
pub fn obj_get<'v>(fields: &'v [(String, Value)], key: &str) -> Result<&'v Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::msg(format!("missing field `{key}`")))
}

/// Derive-macro helper: looks up a struct field, treating absence as
/// [`Value::Null`]. This is what upstream serde's `default`-less `Option`
/// fields effectively do at the JSON layer — a missing key and an explicit
/// `null` both deserialize to `None` — and it lets serialized artifacts
/// gain optional fields without invalidating previously recorded files.
/// Required (non-`Option`) fields still fail, through their own
/// type-mismatch error on `Null`.
pub fn obj_get_or_null<'v>(fields: &'v [(String, Value)], key: &str) -> &'v Value {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&Value::Null)
}

// A `Value` is its own serialized form: embedding one in a derived struct
// (e.g. a journal echoing back an arbitrary spec) passes the tree through
// verbatim in both directions.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::U64(x) => x,
                    Value::I64(x) if x >= 0 => x as u64,
                    Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                        x as u64
                    }
                    ref other => {
                        return Err(DeError::msg(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) if x <= i64::MAX as u64 => x as i64,
                    Value::F64(x) if x.fract() == 0.0
                        && (i64::MIN as f64..=i64::MAX as f64).contains(&x) => x as i64,
                    ref other => {
                        return Err(DeError::msg(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            ref other => Err(DeError::msg(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T; 3] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for [T; 3] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok([
                T::from_value(&items[0])?,
                T::from_value(&items[1])?,
                T::from_value(&items[2])?,
            ]),
            other => Err(DeError::msg(format!("expected 3-element array, found {}", other.kind()))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::msg(format!("expected 2-element array, found {}", other.kind()))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::msg(format!("expected 3-element array, found {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => {
                fields.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError::msg(format!("expected object, found {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back: Vec<(f64, f64)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        let back: BTreeMap<String, u64> = BTreeMap::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        let o: Option<u32> = None;
        assert_eq!(o.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);

        let a = [1.0f64, 2.0, 3.0];
        let back: [f64; 3] = <[f64; 3]>::from_value(&a.to_value()).unwrap();
        assert_eq!(back, a);
        assert!(<[f64; 3]>::from_value(&Value::Array(vec![Value::U64(1)])).is_err());
    }

    #[test]
    fn value_is_its_own_serialized_form() {
        let v = Value::Object(vec![("k".into(), Value::U64(1))]);
        assert_eq!(v.to_value(), v);
        assert_eq!(Value::from_value(&v).unwrap(), v);
    }

    #[test]
    fn missing_fields_read_as_null() {
        let fields = vec![("present".to_string(), Value::U64(3))];
        assert_eq!(obj_get_or_null(&fields, "present"), &Value::U64(3));
        assert_eq!(obj_get_or_null(&fields, "absent"), &Value::Null);
        // An Option target therefore tolerates the absence...
        assert_eq!(Option::<u32>::from_value(obj_get_or_null(&fields, "absent")).unwrap(), None);
        // ...while a required scalar still errors on it.
        assert!(u32::from_value(obj_get_or_null(&fields, "absent")).is_err());
    }

    #[test]
    fn range_errors() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
    }

    #[test]
    fn cross_numeric_coercions() {
        // The JSON parser classifies integral literals as U64/I64; numeric
        // targets must accept any representation of the same value.
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(u32::from_value(&Value::F64(8.0)).unwrap(), 8);
        assert!(u32::from_value(&Value::F64(8.5)).is_err());
    }
}
