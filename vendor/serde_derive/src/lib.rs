//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the stub serde's tree-valued `Serialize` /
//! `Deserialize` traits. With no crates.io access there is no `syn`/`quote`;
//! the item is parsed directly from the [`proc_macro::TokenStream`]. The
//! supported shapes are exactly what the workspace derives on:
//!
//! * structs with named fields (including empty `{}` bodies),
//! * unit structs (`struct Marker;`),
//! * enums whose variants are unit or one-field tuples.
//!
//! Missing struct fields deserialize as `Value::Null` (upstream serde's
//! behavior for `Option` fields at the JSON layer): `Option` targets read
//! `None`, required fields fail with their own type mismatch. Recorded
//! artifacts therefore survive gaining optional fields.
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce a
//! compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stub serde's `Serialize` (tree-building) impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives the stub serde's `Deserialize` (tree-matching) impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match (&item.shape, serialize) {
        (Shape::Struct(fields), true) => struct_serialize(&item.name, fields),
        (Shape::Struct(fields), false) => struct_deserialize(&item.name, fields),
        (Shape::Unit, true) => unit_serialize(&item.name),
        (Shape::Unit, false) => unit_deserialize(&item.name),
        (Shape::Enum(variants), true) => enum_serialize(&item.name, variants),
        (Shape::Enum(variants), false) => enum_deserialize(&item.name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// A variant: its name and whether it carries one tuple payload.
struct Variant {
    name: String,
    has_payload: bool,
}

enum Shape {
    Struct(Vec<String>),
    Unit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skips leading `#[...]` attributes and visibility modifiers in `toks`
/// starting at `i`, returning the next index.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]` (outer attribute / doc comment).
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` / `pub(super)` carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!("the offline serde_derive does not support generic type `{name}`"));
        }
    }
    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok(Item { name, shape: Shape::Unit })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item { name, shape: Shape::Struct(fields) })
            }
            other => Err(format!(
                "unsupported struct body for `{name}` (tuple structs are not \
                 supported by the offline serde_derive): {other:?}"
            )),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Item { name, shape: Shape::Enum(variants) })
            }
            other => Err(format!("expected enum body for `{name}`, found {other:?}")),
        },
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = toks.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // the comma (or one past the end)
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let mut has_payload = false;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    if g.stream()
                        .into_iter()
                        .any(|t| matches!(&t, TokenTree::Punct(p) if p.as_char() == ','))
                    {
                        return Err(format!(
                            "variant `{name}` has multiple fields; the offline \
                             serde_derive supports only one-field tuple variants"
                        ));
                    }
                    has_payload = true;
                    i += 1;
                }
                Delimiter::Brace => {
                    return Err(format!(
                        "variant `{name}` has named fields, which the offline \
                         serde_derive does not support"
                    ));
                }
                _ => {}
            }
        }
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => return Err(format!("expected `,` after `{name}`, found {other:?}")),
        }
        variants.push(Variant { name, has_payload });
    }
    Ok(variants)
}

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let mut inserts = String::new();
    for f in fields {
        inserts
            .push_str(&format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"));
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{inserts}])\n\
             }}\n\
         }}"
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let mut builds = String::new();
    for f in fields {
        builds.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::obj_get_or_null(__fields, \"{f}\"))?,"
        ));
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                     ::serde::Value::Object(__fields) => Ok({name} {{ {builds} }}),\n\
                     __other => Err(::serde::DeError::msg(format!(\n\
                         \"expected object for struct {name}, found {{}}\", __other.kind()))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}

fn unit_serialize(name: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
         }}"
    )
}

fn unit_deserialize(name: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                     ::serde::Value::Null => Ok({name}),\n\
                     __other => Err(::serde::DeError::msg(format!(\n\
                         \"expected null for unit struct {name}, found {{}}\", __other.kind()))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        if v.has_payload {
            arms.push_str(&format!(
                "{name}::{vn}(__x) => ::serde::Value::Object(vec![(\
                 \"{vn}\".to_string(), ::serde::Serialize::to_value(__x))]),"
            ));
        } else {
            arms.push_str(&format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut str_arms = String::new();
    let mut obj_arms = String::new();
    for v in variants {
        let vn = &v.name;
        if v.has_payload {
            obj_arms.push_str(&format!(
                "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
            ));
        } else {
            str_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),"));
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {str_arms}\n\
                         __other => Err(::serde::DeError::msg(format!(\n\
                             \"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __payload) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {obj_arms}\n\
                             __other => Err(::serde::DeError::msg(format!(\n\
                                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::DeError::msg(format!(\n\
                         \"expected enum {name}, found {{}}\", __other.kind()))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
