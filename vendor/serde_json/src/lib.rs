//! Offline stand-in for `serde_json`: prints and parses the stub serde's
//! [`Value`] tree as standard JSON.
//!
//! Covers the workspace's API surface: [`to_string`], [`to_string_pretty`],
//! and [`from_str`]. Numbers print via Rust's shortest-round-trip float
//! formatting, so `parse(print(x))` reproduces every finite `f64` exactly.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// A JSON formatting or parsing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the tree contains a non-finite number.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty JSON (two-space indent, like upstream).
///
/// # Errors
///
/// Returns [`Error`] if the tree contains a non-finite number.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::msg("JSON cannot represent NaN or infinity"));
            }
            // Match serde_json's convention of keeping integral floats
            // visibly floating ("1.0", not "1"); Display is already the
            // shortest representation that round-trips.
            if x.fract() == 0.0 && x.abs() < 1e16 {
                out.push_str(&format!("{x:.1}"));
            } else {
                out.push_str(&x.to_string());
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::msg(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if integral {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(x) = digits.parse::<u64>() {
                    if x <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((x as i128).wrapping_neg() as i64));
                    }
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("E\"3\"\n".into())),
            ("count".into(), Value::U64(3)),
            ("neg".into(), Value::I64(-12)),
            ("xs".into(), Value::Array(vec![Value::F64(1.5), Value::Null, Value::Bool(true)])),
            ("empty".into(), Value::Array(vec![])),
            ("obj".into(), Value::Object(vec![])),
        ]);
        for render in [to_string(&v_wrap(&v)), to_string_pretty(&v_wrap(&v))] {
            let s = render.unwrap();
            let back: ValueWrap = from_str(&s).unwrap();
            assert_eq!(back.0, v, "from {s}");
        }
    }

    /// Serialize/Deserialize shim so the tests can round-trip raw `Value`s.
    struct ValueWrap(Value);
    fn v_wrap(v: &Value) -> ValueWrap {
        ValueWrap(v.clone())
    }
    impl serde::Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    impl serde::Deserialize for ValueWrap {
        fn from_value(v: &Value) -> Result<Self, serde::DeError> {
            Ok(ValueWrap(v.clone()))
        }
    }

    #[test]
    fn float_fidelity() {
        for x in [0.1, 1.0, -2.5e-7, 1e300, 123456.789, -0.0, 1e16] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "via {s}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&-3.0f64).unwrap(), "-3.0");
    }

    #[test]
    fn u64_precision_preserved() {
        let x = u64::MAX - 1;
        let back: u64 = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn i64_min_parses() {
        let back: i64 = from_str(&to_string(&i64::MIN).unwrap()).unwrap();
        assert_eq!(back, i64::MIN);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1.5 x").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn nested_pretty_shape() {
        let v = vec![vec![1u64], vec![]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("[\n  [\n    1\n  ],\n  []\n]"), "{s}");
    }
}
